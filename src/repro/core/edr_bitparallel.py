"""Bit-parallel EDR kernels (Myers 1999, blocked as in Hyyrö 2003).

EDR's unit edit costs (paper Definition 2) quantize every cell update to
{0, 1} — exactly the structure Myers' bit-vector algorithm exploits for
Levenshtein distance.  Consecutive DP cells along the candidate axis
differ by -1, 0, or +1, so a whole 64-cell stripe of the column is
carried in two machine words:

* ``VP`` bit ``j``  =  1  iff  ``D[j+1, i] - D[j, i] = +1``
* ``VN`` bit ``j``  =  1  iff  ``D[j+1, i] - D[j, i] = -1``

(candidate positions along bits, query position ``i`` advancing one
Python-level step at a time — the transpose of :func:`~repro.core
.edr_batch.edr_many`'s row DP, which is value-identical because the EDR
recurrence is symmetric under swapping the sequences).  The classic
character-equality bitmask becomes a per-query-element ε-match bitmask
(:func:`~repro.core.matching.match_bits`): bit ``j`` of the mask is
``match(query_i, candidate_j)``.  One update processes 64 DP cells with
~15 word operations instead of 64 float min/add chains.

Word-packing layout
-------------------
Candidates longer than 64 elements are *blocked*: ``W = ceil(n / 64)``
words per bit vector, candidate position ``j`` living at bit ``j % 64``
of word ``j // 64`` (little-endian bit order, matching ``np.packbits``
with ``bitorder="little"``).  Horizontal carries (±1) propagate through
the block chain per update, with Hyyrö's ``Eq |= 1`` correction on a
negative carry-in.  The boundary row ``D[0, i] = i`` is encoded by
feeding a ``+1`` carry into block 0 on every step.

:func:`edr_many_bitparallel` vectorizes the word recurrence across a
candidate axis: the per-block state is a ``(candidates, W)`` ``uint64``
array and the Python loop advances all candidates one query element at
a time, with the same active-set compaction idiom as ``edr_many``.

Early abandoning
----------------
Exact per-row minima come from the vertical-delta words: the DP value at
candidate position ``j`` after query element ``i`` is ``i + prefix_j``
where ``prefix_j`` sums the ±1 bits of ``VP``/``VN`` up to ``j``.  A
16-bit lookup table over (VP byte, VN byte) pairs yields each byte's net
sum and running minimum, so the masked row minimum (padding bits beyond
each candidate's length excluded) costs one table gather per 8 cells.
``row_min > bound`` proves the final distance exceeds the bound (row
minima of the unit-cost DP never decrease), so the candidate's result
becomes :data:`~repro.core.edr.EARLY_ABANDONED` exactly as in
``edr_many`` — the sentinel pattern is byte-for-byte identical because
both kernels compare the same exact integer row minimum to the same
bound.

Exactness contract: every value is computed in exact small-integer
arithmetic and converted to ``float64`` at the end, so results are
bit-for-bit equal to ``edr``/``edr_many``/``edr_reference`` — finite
entries and abandonment sentinels alike (property-tested in
``tests/test_edr_bitparallel.py``).  Sakoe-Chiba bands are delegated to
the exact banded kernels: a band breaks the two-word column compression,
and no engine refine path uses one.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from .edr import EARLY_ABANDONED, _points, edr
from .edr_batch import edr_many
from .trajectory import Trajectory

__all__ = ["edr_bitparallel", "edr_many_bitparallel"]

TrajectoryLike = Union[Trajectory, np.ndarray, Sequence]

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
_ONE = np.uint64(1)
_ZERO = np.uint64(0)
_SHIFT_MSB = np.uint64(63)

# Match bitmasks are packed for several query elements at once so the
# per-row cost of the ε-comparison is one slice of a big vectorized
# pass instead of a handful of small numpy calls.  Small chunks keep
# the float difference scratch cache-resident — at 256 candidates of
# ~100 points a 32-row chunk spills to DRAM and the ε-compares become
# memory-bound, so 4 rows per pass measures fastest end to end.
_EQ_CHUNK_ROWS = 4

# Bound checks run every 4th query row (and always on the last).  The
# masked row minimum of the unit-cost DP never decreases with the row
# index — every cell of row i+1 derives from a row-i neighbour plus a
# non-negative cost — so a candidate exceeds its bound on some row iff
# it exceeds it on the last row: the abandonment pattern is invariant
# to the check schedule, and checking less often is pure throughput.
_BOUND_CHECK_STRIDE = 4


def _build_prefix_tables() -> "tuple[np.ndarray, np.ndarray]":
    """Byte-pair lookup tables for prefix sums of ±1 delta bits.

    Indexed by ``vp_byte * 256 + vn_byte``: ``NET`` is the byte's total
    ``popcount(vp) - popcount(vn)``; ``MINPRE`` the minimum over the
    byte's eight cumulative partial sums.  Together they turn an exact
    row-minimum over 64-cell words into a gather + cumsum over bytes.
    """
    bits = ((np.arange(256)[:, None] >> np.arange(8)[None, :]) & 1).astype(np.int8)
    delta = bits[:, None, :] - bits[None, :, :]
    cumulative = np.cumsum(delta, axis=2)
    net = np.ascontiguousarray(cumulative[:, :, -1]).reshape(-1)
    minpre = cumulative.min(axis=2).reshape(-1)
    return net, minpre


_NET, _MINPRE = _build_prefix_tables()


def _length_masks(lengths: np.ndarray, words: int) -> np.ndarray:
    """Per-candidate ``uint64`` masks with bits ``[0, n)`` set.

    Shape ``(candidates, words)``; garbage bits at positions at or
    beyond each candidate's length are cleared before any score or
    row-minimum read.
    """
    starts = np.arange(words, dtype=np.int64) * 64
    filled = np.clip(lengths[:, None] - starts[None, :], 0, 64)
    # Clamp the shift to stay in [0, 63]: shifting a uint64 by 64 is
    # undefined, and np.where evaluates both branches.
    shift = np.where(filled > 0, 64 - filled, 0).astype(np.uint64)
    return np.where(filled > 0, _ONES >> shift, np.uint64(0))


def _min_prefixes(vp_masked: np.ndarray, vn_masked: np.ndarray) -> np.ndarray:
    """``min(0, min_j prefix_j)`` per candidate from masked delta words.

    ``prefix_j`` is the cumulative ±1 sum over bit positions up to
    ``j``; including 0 accounts for the row's boundary cell
    ``D[0, i] = i``.  Bytes wholly past a candidate's length contribute
    their (masked) zero deltas — duplicates of an already-included
    prefix value, never spurious minima.
    """
    idx = vp_masked.view(np.uint8).astype(np.int32)
    idx <<= 8
    idx |= vn_masked.view(np.uint8)
    net = _NET[idx]
    pre = np.cumsum(net, axis=1, dtype=np.int32)
    pre -= net
    pre += _MINPRE[idx]
    return np.minimum(pre.min(axis=1), 0)


def _net_scores(vp_masked: np.ndarray, vn_masked: np.ndarray) -> np.ndarray:
    """``popcount(VP) - popcount(VN)`` per candidate (= ``prefix_n``)."""
    idx = vp_masked.view(np.uint8).astype(np.int32)
    idx <<= 8
    idx |= vn_masked.view(np.uint8)
    return _NET[idx].sum(axis=1, dtype=np.int64)


def _pack_eq_chunk(
    coords: np.ndarray,
    elements: np.ndarray,
    epsilon: float,
    bools: np.ndarray,
    diff: np.ndarray,
) -> np.ndarray:
    """ε-match bitmasks for a run of query elements, packed per word.

    ``coords`` holds the candidate coordinate planes
    ``(dims, candidates, width)`` (``+inf`` beyond each candidate's
    length); ``bools``/``diff`` are reusable scratch buffers whose
    padding columns (``width ..``) stay ``False`` so the packed words
    carry zero bits past every real position.  ``|a - e| <= ε`` is
    evaluated as ``-ε <= a - e <= ε`` — the same rounded difference
    feeds both forms, so the booleans are bit-identical to the dense
    kernels' — saving the ``abs`` pass over the largest temporary.
    Result: ``(rows, candidates, words)`` ``uint64``.
    """
    rows = len(elements)
    width = coords.shape[2]
    scratch = diff[:rows]
    matches = bools[:rows]
    real = matches[:, :, :width]
    np.subtract(coords[0][None, :, :], elements[:, 0][:, None, None], out=scratch)
    np.less_equal(scratch, epsilon, out=real)
    real &= scratch >= -epsilon
    for axis in range(1, coords.shape[0]):
        np.subtract(
            coords[axis][None, :, :], elements[:, axis][:, None, None], out=scratch
        )
        real &= scratch <= epsilon
        real &= scratch >= -epsilon
    count, padded_width = matches.shape[1], matches.shape[2]
    packed = np.packbits(
        matches.reshape(rows * count, padded_width), axis=1, bitorder="little"
    )
    return packed.view(np.uint64).reshape(rows, count, -1)


def edr_many_bitparallel(
    query: TrajectoryLike,
    candidates: Sequence[TrajectoryLike],
    epsilon: float,
    bounds: Optional[Union[float, Sequence[float], np.ndarray]] = None,
    band: Optional[int] = None,
) -> np.ndarray:
    """Batched bit-parallel EDR: drop-in for :func:`~repro.core.edr_batch.edr_many`.

    Same signature, same exactness contract, same abandonment sentinels;
    only the arithmetic differs (word-packed ±1 deltas instead of a
    float64 row).  ``band`` is delegated to the exact banded ``edr_many``.
    """
    if band is not None:
        return edr_many(query, candidates, epsilon, bounds=bounds, band=band)
    if epsilon < 0.0:
        raise ValueError("matching threshold epsilon must be non-negative")
    query_points = _points(query)
    m = len(query_points)
    count = len(candidates)
    results = np.empty(count, dtype=np.float64)
    if count == 0:
        return results
    points = [_points(candidate) for candidate in candidates]
    lengths = np.array([len(p) for p in points], dtype=np.int64)

    bounds_array: Optional[np.ndarray] = None
    if bounds is not None:
        bounds_array = np.ascontiguousarray(
            np.broadcast_to(np.asarray(bounds, dtype=np.float64), (count,))
        )

    if m == 0:
        results[:] = lengths
        return results

    active_list = []
    for position, candidate_points in enumerate(points):
        n = len(candidate_points)
        if n == 0:
            results[position] = float(m)
            continue
        if candidate_points.shape[1] != query_points.shape[1]:
            raise ValueError("trajectories must have the same spatial arity")
        active_list.append(position)
    if not active_list:
        return results

    active = np.array(active_list, dtype=np.int64)
    active_lengths = lengths[active]
    width = int(active_lengths.max())
    words = (width + 63) // 64
    dims = query_points.shape[1]

    # Per-axis coordinate planes, padded with +inf (which can never
    # ε-match) to the shared real width; the boolean scratch buffer
    # carries the additional padding out to whole 64-bit words.
    coords = np.full((dims, active.size, width), np.inf, dtype=np.float64)
    for row, position in enumerate(active):
        candidate_points = points[position]
        coords[:, row, : len(candidate_points)] = candidate_points.T

    # One contiguous (candidates,) vector per 64-bit block: python-list
    # indexing is free, every word operation runs on a contiguous array,
    # and the common one-word case never touches a column stride.
    vp_blocks = [
        np.full(active.size, _ONES, dtype=np.uint64) for _ in range(words)
    ]  # D[j, 0] = j
    vn_blocks = [np.zeros(active.size, dtype=np.uint64) for _ in range(words)]
    masks = _length_masks(active_lengths, words)
    use_bounds = bounds_array is not None
    active_bounds = bounds_array[active] if use_bounds else None

    chunk_rows = min(_EQ_CHUNK_ROWS, m)
    bools = np.zeros((chunk_rows, active.size, words * 64), dtype=bool)
    diff = np.empty((chunk_rows, active.size, width), dtype=np.float64)

    eq_chunk: Optional[np.ndarray] = None
    chunk_base = 0
    chunk_stop = 0
    for i in range(1, m + 1):
        row = i - 1
        if row >= chunk_stop:
            chunk_base = row
            chunk_stop = min(m, row + _EQ_CHUNK_ROWS)
            eq_chunk = _pack_eq_chunk(
                coords, query_points[chunk_base:chunk_stop], epsilon, bools, diff
            )
        eq_row = eq_chunk[row - chunk_base]

        # The boundary row D[0, i] = i feeds a +1 horizontal carry into
        # block 0; later blocks chain the previous block's carry-out.
        hp_in = _ONE
        hn_in = _ZERO
        last = words - 1
        for block in range(words):
            vp_block = vp_blocks[block]
            vn_block = vn_blocks[block]
            eq_block = eq_row[:, block]
            xv = eq_block | vn_block
            if block:  # Hyyrö's negative-carry fixup (block 0 carry is +1)
                eq_block = eq_block | hn_in
            xh = (((eq_block & vp_block) + vp_block) ^ vp_block) | eq_block
            hp = vn_block | ~(xh | vp_block)
            hn = vp_block & xh
            if block != last:
                hp_out = hp >> _SHIFT_MSB
                hn_out = hn >> _SHIFT_MSB
            hp = hp << _ONE
            hp |= hp_in
            hn = hn << _ONE
            if block:
                hn |= hn_in
            vp_blocks[block] = hn | ~(xv | hp)
            vn_blocks[block] = hp & xv
            if block != last:
                hp_in = hp_out
                hn_in = hn_out

        if use_bounds and (i == m or i % _BOUND_CHECK_STRIDE == 0):
            # Exact masked row minimum: i + min(0, min_j prefix_j) over
            # real candidate positions only.  Same value, same <= test
            # as edr_many — identical abandonment pattern (see the
            # stride note above for why sparse checks don't change it).
            vp_masked = np.stack(vp_blocks, axis=1)
            vp_masked &= masks
            vn_masked = np.stack(vn_blocks, axis=1)
            vn_masked &= masks
            row_minima = i + _min_prefixes(vp_masked, vn_masked)
            alive = row_minima <= active_bounds
            if not alive.all():
                results[active[~alive]] = EARLY_ABANDONED
                if not alive.any():
                    return results
                active = active[alive]
                active_lengths = active_lengths[alive]
                coords = np.ascontiguousarray(coords[:, alive])
                vp_blocks = [block_bits[alive] for block_bits in vp_blocks]
                vn_blocks = [block_bits[alive] for block_bits in vn_blocks]
                masks = np.ascontiguousarray(masks[alive])
                active_bounds = active_bounds[alive]
                eq_chunk = np.ascontiguousarray(eq_chunk[:, alive])
                new_width = int(active_lengths.max())
                new_words = (new_width + 63) // 64
                if new_words < words:
                    words = new_words
                    vp_blocks = vp_blocks[:words]
                    vn_blocks = vn_blocks[:words]
                    masks = np.ascontiguousarray(masks[:, :words])
                    eq_chunk = np.ascontiguousarray(eq_chunk[:, :, :words])
                if new_width < width:
                    width = new_width
                    coords = np.ascontiguousarray(coords[:, :, :width])
                # Scratch buffers match the compacted shapes; later
                # chunks hold at most the rows still unprocessed.
                rows_dim = min(_EQ_CHUNK_ROWS, max(m - i, 1))
                bools = np.zeros((rows_dim, active.size, words * 64), dtype=bool)
                diff = np.empty((rows_dim, active.size, width), dtype=np.float64)

    vp_masked = np.stack(vp_blocks, axis=1)
    vp_masked &= masks
    vn_masked = np.stack(vn_blocks, axis=1)
    vn_masked &= masks
    results[active] = m + _net_scores(vp_masked, vn_masked)
    return results


def edr_bitparallel(
    first: TrajectoryLike,
    second: TrajectoryLike,
    epsilon: float,
    bound: Optional[float] = None,
    band: Optional[int] = None,
) -> float:
    """Bit-parallel scalar EDR: drop-in for :func:`~repro.core.edr.edr`.

    Orients like the scalar kernel — the longer trajectory drives the
    update loop, the shorter is packed along bits — so the per-row
    minima (and therefore the early-abandon sentinel pattern) are those
    of ``edr`` itself.  ``band`` is delegated to the exact banded
    scalar kernel.
    """
    if band is not None:
        return edr(first, second, epsilon, bound=bound, band=band)
    first_points = _points(first)
    second_points = _points(second)
    if len(first_points) >= len(second_points):
        text, pattern = first_points, second_points
    else:
        text, pattern = second_points, first_points
    return float(edr_many_bitparallel(text, [pattern], epsilon, bounds=bound)[0])
