"""Sharded intra-query parallelism over shared-memory shards.

A single large query on the classic engines occupies one core end to
end; :class:`ShardedDatabase` splits one query's work across N database
shards instead.  The layout:

* **Shared-memory shards.**  The database is partitioned into N
  contiguous shards whose trajectory points, length offsets, Q-gram
  mean arrays, histogram count matrices (on the *global* grid), and
  near-triangle reference columns are packed into one
  :class:`~repro.core.shm.SharedArrayBlock` per shard.  A persistent
  worker pool maps the blocks once at startup; per-task messages carry
  only scalars and candidate ids — zero database-sized pickling.

* **Coordinator-brain rounds.**  The coordinator computes the global
  visit order from the primary pruner's bulk quick bounds (gathered per
  shard in a parallel filter phase) and walks it in rounds of
  ``refine_batch_size`` candidates.  Within a round the pruning
  threshold ``B`` (the current k-th best distance, or the range radius)
  is *frozen*: the coordinator makes every quick-bound pruning decision
  and the sorted-scan break itself, and ships the surviving candidates
  to their shard workers, which run the staged exact bounds and the
  batched EDR kernel.  Because every decision is a pure function of
  ``(candidate, B)`` and the sequence of ``B`` values is derived from
  the global order alone, both the answers *and* the per-pruner
  counters are independent of the shard count.

* **Cooperative bound tightening.**  Shards additionally share the
  running k-th-best bound through a ``multiprocessing.Value``: the
  coordinator republishes it as each shard's round results merge, and
  workers re-read it at refine-batch boundaries, so a tight bound found
  in one shard shrinks the early-abandon budget in all others
  mid-round.  The shared bound only ever tightens below the frozen
  ``B``, so every abandonment it causes is sound.

**Exactness.**  Results are byte-for-byte identical to the serial
engines: every pruning decision compares a proven lower bound (paper
Theorems 1–6) strictly against a threshold that is never below the
final k-th distance, and the canonical result list makes the answer a
pure function of the surviving candidates' distances — so merge order,
shard count, and execution mode cannot change it.  See
``docs/SHARDING.md`` for the full argument.
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import faults as _faults
from .database import TrajectoryDatabase
from .edr_batch import DEFAULT_REFINE_BATCH_SIZE, edr_many, iter_length_buckets
from .faults import (
    ChecksumMismatch,
    Fault,
    FaultPlan,
    ShardAttachError,
    WorkerCrash,
    WorkerTimeout,
)
from .histogram import HistogramArrayStore, HistogramSpace
from .kernels import LEGACY_KERNEL, length_bucket, resolve_kernel_plan, run_kernel
from .mp import process_context, terminate_pool
from .search import (
    HistogramPruner,
    NearTrianglePruning,
    Neighbor,
    Pruner,
    QgramMergeJoinPruner,
    QueryPruner,
    SearchStats,
    _ResultList,
    knn_search,
)
from .shm import SharedArrayBlock
from .subtrajectory import (
    DEFAULT_WINDOW_ALPHA,
    WINDOW_KERNEL,
    WindowMatch,
    _WindowResultList,
    edr_windows_many,
    resolve_window_range,
    window_counts,
)
from .subtrajectory import subknn_search as _serial_subknn_search
from .trajectory import Trajectory

__all__ = [
    "ShardedDatabase",
    "ShardedSearchStats",
    "pruner_spec_of",
    "RECOVERY_FIELDS",
]

#: Recovery counters carried by :class:`ShardedSearchStats` (per query)
#: and by the engine's lifetime :meth:`ShardedDatabase.resilience`
#: snapshot.  ``retries`` counts re-executions, ``respawns`` replaced
#: worker pools; the rest classify the detected failures.
RECOVERY_FIELDS = (
    "retries",
    "respawns",
    "worker_crashes",
    "timeouts",
    "attach_failures",
    "checksum_failures",
    "transport_errors",
)

_QGRAM_Q = 1  # the spec-built merge-join pruner is q=1 (service default)


def canonical_pruner_spec(spec: str) -> str:
    """Deferred import of the shared spec canonicalizer.

    ``service.pruning`` imports ``core.search``; importing it lazily
    here keeps ``core`` importable without touching the service package
    at module-load time (no cycle through ``core.batch``).
    """
    from ..service.pruning import canonical_pruner_spec as _canonical

    return _canonical(spec)


@dataclass
class ShardedSearchStats(SearchStats):
    """Aggregated counters plus the per-shard breakdown.

    ``per_shard[s]`` holds shard ``s``'s own :class:`SearchStats`
    (credits attributed to the shard owning each candidate); the
    inherited fields are their sums.  ``rounds`` counts frozen-bound
    refinement rounds; ``shards`` the shard count.
    """

    per_shard: List[SearchStats] = field(default_factory=list)
    rounds: int = 0
    shards: int = 0
    # Recovery accounting (see RECOVERY_FIELDS).  Answers are exact
    # regardless — these count what it took to stay exact.
    retries: int = 0
    respawns: int = 0
    worker_crashes: int = 0
    timeouts: int = 0
    attach_failures: int = 0
    checksum_failures: int = 0
    transport_errors: int = 0
    #: True when this query fell back to the serial engine after a
    #: shard exhausted its retry budget.  The answer is still exact.
    degraded: bool = False


def pruner_spec_of(pruners: Sequence[Pruner]) -> str:
    """The service spec string equivalent to a built pruner chain.

    The sharded engine rebuilds pruner chains *inside* shard workers
    from the spec, so callers holding constructed pruner objects (such
    as ``knn_batch``) must map them back.  Only the spec-buildable
    configurations are accepted; anything else raises ``ValueError``.
    """
    parts: List[str] = []
    for pruner in pruners:
        if isinstance(pruner, HistogramPruner):
            if pruner._delta != 1.0:
                raise ValueError("sharded execution supports histogram delta=1 only")
            parts.append("histogram-1d" if pruner._per_axis else "histogram")
        elif isinstance(pruner, QgramMergeJoinPruner):
            if pruner._q != _QGRAM_Q or not pruner._two_dimensional:
                raise ValueError("sharded execution supports the 2-D q=1 Q-gram pruner only")
            parts.append("qgram")
        elif isinstance(pruner, NearTrianglePruning):
            parts.append("nti")
        else:
            raise ValueError(
                f"pruner {pruner.name!r} has no sharded equivalent; use the spec "
                "families histogram/histogram-1d/qgram/nti"
            )
    return ",".join(parts)


# ----------------------------------------------------------------------
# Shard packing (coordinator side)
# ----------------------------------------------------------------------
def _histogram_variants(part: str, ndim: int) -> List[Tuple[float, Optional[int]]]:
    if part == "histogram":
        return [(1.0, None)]
    return [(1.0, axis) for axis in range(ndim)]


def _pack_shard(
    database: TrajectoryDatabase,
    start: int,
    stop: int,
    parts: Sequence[str],
    max_triangle: int,
) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
    """One shard's artifact arrays (for shm) and its small pickled meta.

    Histogram stores are row-sliced but keep the parent's grid
    (``lo``/``shape``) and the parent's :class:`HistogramSpace` origin:
    re-anchoring at the shard's own minima would shift every bin index
    at shard borders and change the bounds.  Q-gram pools are re-pooled
    from the shard's per-trajectory sorted means (the global pool is
    sorted across owners and cannot be sliced).
    """
    trajectories = database.trajectories[start:stop]
    arrays: Dict[str, np.ndarray] = {}
    meta: Dict[str, object] = {
        "start": int(start),
        "stop": int(stop),
        "epsilon": database.epsilon,
        "ndim": database.ndim,
        "qgram": None,
        "hist": [],
        "nti": None,
    }

    points = [t.points for t in trajectories]
    offsets = np.zeros(len(points) + 1, dtype=np.int64)
    np.cumsum([len(p) for p in points], out=offsets[1:])
    arrays["points"] = (
        np.concatenate(points) if offsets[-1] else np.empty((0, database.ndim))
    )
    arrays["offsets"] = offsets

    if "qgram" in parts:
        from ..index.mergejoin import flatten_sorted_means

        means = database.sorted_qgram_means(_QGRAM_Q)[start:stop]
        qoffsets = np.zeros(len(means) + 1, dtype=np.int64)
        np.cumsum([len(m) for m in means], out=qoffsets[1:])
        arrays["qg2_values"] = (
            np.concatenate(means) if qoffsets[-1] else np.empty((0, database.ndim))
        )
        arrays["qg2_offsets"] = qoffsets
        pool_values, pool_owners = flatten_sorted_means(means)
        arrays["qg2_pool_values"] = pool_values
        arrays["qg2_pool_owners"] = pool_owners
        meta["qgram"] = {"q": _QGRAM_Q}

    variants: List[Tuple[float, Optional[int]]] = []
    for part in parts:
        if part in ("histogram", "histogram-1d"):
            for variant in _histogram_variants(part, database.ndim):
                if variant not in variants:
                    variants.append(variant)
    for tag_index, (delta, axis) in enumerate(variants):
        tag = f"h{tag_index}"
        space, built = database.histograms(delta=delta, axis=axis)
        store = database.histogram_arrays(delta=delta, axis=axis)
        shard_histograms = built[start:stop]
        key_rows: List[np.ndarray] = []
        count_rows: List[np.ndarray] = []
        koffsets = np.zeros(len(shard_histograms) + 1, dtype=np.int64)
        for index, histogram in enumerate(shard_histograms):
            koffsets[index + 1] = koffsets[index] + len(histogram)
            if histogram:
                keys = sorted(histogram)
                key_rows.append(np.asarray(keys, dtype=np.int64).reshape(len(keys), -1))
                count_rows.append(
                    np.asarray([histogram[key] for key in keys], dtype=np.int64)
                )
        ndim_h = 1 if axis is not None else database.ndim
        arrays[f"{tag}_keys"] = (
            np.concatenate(key_rows)
            if key_rows
            else np.empty((0, ndim_h), dtype=np.int64)
        )
        arrays[f"{tag}_kcounts"] = (
            np.concatenate(count_rows) if count_rows else np.empty(0, dtype=np.int64)
        )
        arrays[f"{tag}_koffsets"] = koffsets
        arrays[f"{tag}_totals"] = store.totals[start:stop]
        sparse = store._sparse
        if sparse:
            sliced = store._counts[start:stop]
            arrays[f"{tag}_data"] = sliced.data
            arrays[f"{tag}_indices"] = sliced.indices
            arrays[f"{tag}_indptr"] = sliced.indptr
        else:
            arrays[f"{tag}_counts"] = store._counts[start:stop]
        meta["hist"].append(
            {
                "tag": tag,
                "delta": float(delta),
                "axis": axis,
                "ndim": ndim_h,
                "origin": [float(v) for v in space.origin],
                "bin_size": float(space.bin_size),
                "lo": [int(v) for v in store._lo],
                "shape": [int(v) for v in store._shape],
                "sparse": bool(sparse),
            }
        )

    if "nti" in parts:
        columns = database.reference_columns(max_triangle, policy="first")
        reference_ids = np.asarray(sorted(columns), dtype=np.int64)
        arrays["nti_matrix"] = np.stack(
            [columns[int(rid)][start:stop] for rid in reference_ids]
        ) if len(reference_ids) else np.empty((0, stop - start))
        arrays["nti_refs"] = reference_ids
        meta["nti"] = {"max_triangle": int(max_triangle), "policy": "first"}

    return arrays, meta


# ----------------------------------------------------------------------
# Shard runtime (worker side — also used in-process in inline mode)
# ----------------------------------------------------------------------
_QUERY_CACHE_LIMIT = 8


class _ShardRuntime:
    """One attached shard: database view, injected artifacts, query cache."""

    def __init__(self, manifest: Dict[str, object], meta: Dict[str, object]) -> None:
        file_mode = manifest.get("kind") == "file"
        if file_mode:
            # Mmap-attach mode: the shard maps row slices of a tiered
            # store's own files — no artifact bytes are copied, and the
            # lazy views below keep attach from faulting in the corpus
            # (eager Trajectory construction scans every point for the
            # finiteness check).
            from ..storage.tiered import (
                FileArrayBlock,
                LazyHistogramRows,
                MmapTrajectoryList,
                OffsetSlicedRows,
            )

            self.block = FileArrayBlock.attach(manifest)
        else:
            self.block = SharedArrayBlock.attach(manifest)
        self.meta = meta
        arrays = self.block.arrays()
        offsets = arrays["offsets"]
        points = arrays["points"]
        if file_mode:
            self.database = TrajectoryDatabase._shell(
                MmapTrajectoryList(points, offsets),
                int(meta["ndim"]),
                float(meta["epsilon"]),
                np.diff(np.asarray(offsets)),
            )
        else:
            trajectories = [
                Trajectory(points[offsets[i] : offsets[i + 1]])
                for i in range(len(offsets) - 1)
            ]
            self.database = TrajectoryDatabase(trajectories, float(meta["epsilon"]))

        if meta["qgram"] is not None:
            q = int(meta["qgram"]["q"])
            qoffsets = arrays["qg2_offsets"]
            values = arrays["qg2_values"]
            if file_mode:
                sorted_means = OffsetSlicedRows(values, qoffsets)
            else:
                sorted_means = [
                    values[qoffsets[i] : qoffsets[i + 1]]
                    for i in range(len(qoffsets) - 1)
                ]
            self.database._sorted_means_2d[q] = sorted_means
            if "qg2_pool_values" in arrays:
                self.database._flat_means_2d[q] = (
                    arrays["qg2_pool_values"],
                    arrays["qg2_pool_owners"],
                )
            else:
                # A store's global pool is sorted across all owners and
                # cannot be row-sliced per shard; re-pool the shard's
                # rows, exactly as the shm packing does.
                from ..index.mergejoin import flatten_sorted_means

                self.database._flat_means_2d[q] = flatten_sorted_means(
                    list(sorted_means)
                )

        for variant in meta["hist"]:
            tag = variant["tag"]
            axis = variant["axis"]
            space = HistogramSpace(variant["origin"], variant["bin_size"])
            keys = arrays[f"{tag}_keys"]
            kcounts = arrays[f"{tag}_kcounts"]
            koffsets = arrays[f"{tag}_koffsets"]
            if file_mode:
                histograms = LazyHistogramRows(keys, kcounts, koffsets)
            else:
                histograms = []
                for i in range(len(koffsets) - 1):
                    lo, hi = int(koffsets[i]), int(koffsets[i + 1])
                    histograms.append(
                        {
                            tuple(map(int, key)): int(count)
                            for key, count in zip(
                                keys[lo:hi].tolist(), kcounts[lo:hi].tolist()
                            )
                        }
                    )
            key = (float(variant["delta"]), axis)
            self.database._histograms[key] = (space, histograms)
            if variant["sparse"]:
                counts = (
                    arrays[f"{tag}_data"],
                    arrays[f"{tag}_indices"],
                    arrays[f"{tag}_indptr"],
                )
            else:
                counts = arrays[f"{tag}_counts"]
            self.database._histogram_arrays[key] = HistogramArrayStore.from_state(
                variant["ndim"],
                np.asarray(variant["lo"], dtype=np.int64),
                np.asarray(variant["shape"], dtype=np.int64),
                arrays[f"{tag}_totals"],
                counts,
                sparse=variant["sparse"],
            )

        # Near-triangle reference column slices (global reference ids,
        # shard-local candidate axis).  The cooperative NTI state itself
        # is coordinator-owned — it must see the global record order —
        # but the columns ride in the shard's block so shard-local
        # engines can consult them without touching the parent.
        self.reference_columns: Dict[int, np.ndarray] = {}
        if meta["nti"] is not None:
            matrix = arrays["nti_matrix"]
            for row, reference_id in enumerate(arrays["nti_refs"].tolist()):
                self.reference_columns[int(reference_id)] = matrix[row]

        self._chains: Dict[str, Dict[int, Optional[Pruner]]] = {}
        self._queries: "Dict[Tuple[str, str], Dict[str, object]]" = {}

    def chain(self, spec: str) -> Dict[int, Optional[Pruner]]:
        """Static pruners of ``spec`` rebuilt against the shard view.

        Keyed by chain position; dynamic entries (``nti``) are ``None``
        — the coordinator evaluates those with global state.
        """
        if spec not in self._chains:
            chain: Dict[int, Optional[Pruner]] = {}
            for position, name in enumerate(p for p in spec.split(",") if p):
                if name == "histogram":
                    chain[position] = HistogramPruner(self.database)
                elif name == "histogram-1d":
                    chain[position] = HistogramPruner(self.database, per_axis=True)
                elif name == "qgram":
                    chain[position] = QgramMergeJoinPruner(self.database, q=_QGRAM_Q)
                elif name == "nti":
                    chain[position] = None
                else:  # pragma: no cover - specs are pre-validated
                    raise ValueError(f"unknown pruner {name!r}")
            self._chains[spec] = chain
        return self._chains[spec]

    def query_state(
        self, spec: str, digest: str, query_points: np.ndarray
    ) -> Dict[str, object]:
        """Per-(query, spec) pruner state, LRU-cached per shard.

        Refine tasks can land on any pool worker, so every task carries
        the query points and the state rebuilds on a cache miss; repeat
        rounds of the same query on the same worker hit the cache.
        """
        key = (spec, digest)
        state = self._queries.pop(key, None)
        if state is None:
            query = Trajectory(query_points)
            pruners = {
                position: pruner.for_query(query)
                for position, pruner in self.chain(spec).items()
                if pruner is not None
            }
            quick = {
                position: np.asarray(
                    query_pruner.bulk_quick_lower_bounds(), dtype=np.float64
                )
                for position, query_pruner in pruners.items()
            }
            state = {"query": query, "pruners": pruners, "quick": quick}
        self._queries[key] = state
        while len(self._queries) > _QUERY_CACHE_LIMIT:
            self._queries.pop(next(iter(self._queries)))
        return state

    def filter(
        self, spec: str, digest: str, query_points: np.ndarray
    ) -> Dict[int, np.ndarray]:
        """Bulk quick-bound arrays of every static pruner, shard-local."""
        state = self.query_state(spec, digest, query_points)
        return dict(state["quick"])

    def refine(
        self,
        spec: str,
        digest: str,
        query_points: np.ndarray,
        members: List[int],
        threshold: float,
        early_abandon: bool,
        exact_positions: List[int],
        batch_size: int,
        kernel_spec,
        shared_value,
    ) -> List[Tuple[str, float]]:
        """Staged exact bounds + batched EDR for one round's shard group.

        Every member already passed all quick bounds at ``threshold``
        (the coordinator pruned the rest), so the work here is: the
        exact stage of each two-stage pruner in ``exact_positions``
        (chain order), then the batched EDR kernel over the survivors,
        length-bucketed.  Outcomes align with ``members``: ``("p", i)``
        — pruned by the exact stage of chain position ``i`` — or
        ``("d", distance)`` with ``inf`` marking an early abandon.

        With ``early_abandon`` the EDR budget is ``threshold`` tightened
        by the shared cooperative bound, re-read at every bucket
        boundary; both only shrink below the frozen round threshold, so
        abandonments stay sound.

        ``kernel_spec`` is the coordinator-resolved kernel routing:
        ``None`` keeps the legacy batched kernel, otherwise it is a
        serializable ``(default, ((bucket, kernel), ...))`` pair built
        from the parent's :class:`~repro.core.kernels.KernelPlan`.
        Workers never autotune — they apply the table they were handed,
        and because every kernel returns byte-identical distances the
        choice cannot change any outcome.
        """
        state = self.query_state(spec, digest, query_points)
        pruners: Dict[int, QueryPruner] = state["pruners"]
        query: Trajectory = state["query"]
        outcomes: List[Optional[Tuple[str, float]]] = [None] * len(members)
        survivors: List[int] = []
        survivor_slots: List[int] = []
        finite = np.isfinite(threshold)
        for slot, local_index in enumerate(members):
            pruned_at = None
            if finite:
                for position in exact_positions:
                    if pruners[position].exact_lower_bound(local_index) > threshold:
                        pruned_at = position
                        break
            if pruned_at is not None:
                outcomes[slot] = ("p", float(pruned_at))
            else:
                survivors.append(local_index)
                survivor_slots.append(slot)
        if survivors:
            kernel_table = None
            default_kernel = None
            if kernel_spec is not None:
                default_kernel, pairs = kernel_spec
                kernel_table = dict(pairs)
            lengths = self.database.lengths[survivors]
            for bucket in iter_length_buckets(lengths, batch_size):
                bound = None
                if early_abandon:
                    limit = threshold
                    if shared_value is not None:
                        limit = min(limit, float(shared_value.value))
                    bound = limit if np.isfinite(limit) else None
                indices = [survivors[int(position)] for position in bucket]
                candidates = [self.database.trajectories[i] for i in indices]
                if kernel_table is None:
                    distances = edr_many(
                        query, candidates, self.database.epsilon, bounds=bound
                    )
                else:
                    # Length-sorted batches are not aligned to power-of-two
                    # buckets, so pick by the longest member — it sets the
                    # batch's padded width, which the autotuner's bucket
                    # timing models.  Any deterministic pick is sound:
                    # kernels agree byte-for-byte.
                    kernel = kernel_table.get(
                        length_bucket(int(lengths[int(bucket[-1])])),
                        default_kernel,
                    )
                    distances = run_kernel(
                        kernel, query, candidates, self.database.epsilon,
                        bounds=bound,
                    )
                for position, distance in zip(bucket, distances):
                    outcomes[survivor_slots[int(position)]] = ("d", float(distance))
        return outcomes  # type: ignore[return-value]

    def subknn(
        self,
        query_points: np.ndarray,
        members: List[int],
        bound: float,
        lo: int,
        hi: int,
        batch_size: int,
    ) -> List[Tuple[float, int, int, int, int]]:
        """Best banded window of each member, against the shard view.

        No pruner state is involved — the coordinator evaluates the
        (single-stage, static) window bounds itself, so the task needs
        only the corpus rows.  ``bound`` is the frozen round threshold
        folded with the early-abandon flag (non-finite disables row
        abandoning); there is deliberately no cooperative mid-round
        tightening, which is what keeps the window counters byte-equal
        to the serial engine's.  Outcomes align with ``members``:
        ``(distance, start, end, evaluated, abandoned)`` per member,
        with ``inf`` distance when every window was abandoned.
        """
        outcomes: List[Optional[Tuple[float, int, int, int, int]]] = (
            [None] * len(members)
        )
        limit = float(bound) if np.isfinite(bound) else None
        lengths = self.database.lengths[members]
        for bucket in iter_length_buckets(lengths, batch_size):
            indices = [members[int(position)] for position in bucket]
            candidates = [self.database.trajectories[i] for i in indices]
            distances, starts, ends, evaluated, abandoned = edr_windows_many(
                query_points, candidates, self.database.epsilon, lo, hi,
                bounds=limit,
            )
            for slot, position in enumerate(bucket):
                outcomes[int(position)] = (
                    float(distances[slot]),
                    int(starts[slot]),
                    int(ends[slot]),
                    int(evaluated[slot]),
                    int(abandoned[slot]),
                )
        return outcomes  # type: ignore[return-value]

    def close(self) -> None:
        self.block.close()


class _WorkerState:
    """Per-process registry of attached shard runtimes."""

    def __init__(self, payload: Dict[str, object], shared_value) -> None:
        self._payload = payload
        self.shared_value = shared_value
        self._runtimes: Dict[int, _ShardRuntime] = {}

    def runtime(self, shard_id: int) -> _ShardRuntime:
        if shard_id not in self._runtimes:
            shard = self._payload["shards"][shard_id]
            try:
                runtime = _ShardRuntime(shard["manifest"], shard["meta"])
            except (FileNotFoundError, ValueError) as error:
                # The segment vanished or its manifest no longer matches
                # — surface as the attach-failure class so the
                # coordinator's recovery path handles both the injected
                # and the real thing identically.
                raise ShardAttachError(
                    f"cannot attach shard {shard_id}: {error}"
                ) from error
            self._runtimes[shard_id] = runtime
        return self._runtimes[shard_id]

    def drop(self, shard_id: int) -> None:
        """Forget shard ``shard_id``'s runtime (forces a reattach)."""
        runtime = self._runtimes.pop(shard_id, None)
        if runtime is not None:
            runtime.close()

    def close(self) -> None:
        for runtime in self._runtimes.values():
            runtime.close()
        self._runtimes = {}


_POOL_STATE: Optional[_WorkerState] = None


def _pool_initializer(payload: Dict[str, object], shared_value) -> None:
    global _POOL_STATE
    _POOL_STATE = _WorkerState(payload, shared_value)


def _pool_filter(shard_id, spec, digest, query_points, directives=()):
    _faults.apply(
        directives, inline=False, drop=lambda: _POOL_STATE.drop(shard_id)
    )
    payload = _POOL_STATE.runtime(shard_id).filter(spec, digest, query_points)
    return _faults.wrap_result(payload, directives)


def _pool_refine(
    shard_id, spec, digest, query_points, members, threshold,
    early_abandon, exact_positions, batch_size, kernel_spec, directives=(),
):
    _faults.apply(
        directives, inline=False, drop=lambda: _POOL_STATE.drop(shard_id)
    )
    payload = _POOL_STATE.runtime(shard_id).refine(
        spec, digest, query_points, members, threshold,
        early_abandon, exact_positions, batch_size, kernel_spec,
        _POOL_STATE.shared_value,
    )
    return _faults.wrap_result(payload, directives)


def _pool_subknn(
    shard_id, query_points, members, bound, lo, hi, batch_size, directives=(),
):
    _faults.apply(
        directives, inline=False, drop=lambda: _POOL_STATE.drop(shard_id)
    )
    payload = _POOL_STATE.runtime(shard_id).subknn(
        query_points, members, bound, lo, hi, batch_size
    )
    return _faults.wrap_result(payload, directives)


def _pool_ping():
    """Worker liveness probe: answers with the worker's pid."""
    return os.getpid()


class _ShardFailure(RuntimeError):
    """A shard task exhausted its retry budget — degrade to serial."""

    def __init__(self, point: str, shard_id: int) -> None:
        super().__init__(
            f"shard {shard_id} failed its {point} task after retries"
        )
        self.point = point
        self.shard_id = shard_id


def _classify(error: BaseException) -> Optional[str]:
    """Map a dispatch failure to its recovery counter (None = not ours).

    Unknown exception types return ``None`` and the caller re-raises:
    masking a genuine bug as a transient worker fault would retry (and
    eventually serialize) forever instead of surfacing it.
    """
    if isinstance(error, (BrokenProcessPool, WorkerCrash)):
        return "worker_crashes"
    if isinstance(error, (_FuturesTimeout, TimeoutError, WorkerTimeout)):
        return "timeouts"
    if isinstance(error, ShardAttachError):
        return "attach_failures"
    if isinstance(error, ChecksumMismatch):
        return "checksum_failures"
    if isinstance(error, (EOFError, BrokenPipeError, ConnectionError)):
        return "transport_errors"
    return None


class _InlineValue:
    """In-process stand-in for the shared cooperative bound."""

    __slots__ = ("value",)

    def __init__(self, value: float = float("inf")) -> None:
        self.value = value


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
class ShardedDatabase:
    """Partition-parallel exact search over a warmed database.

    Parameters
    ----------
    database:
        The parent database.  Artifacts needed by ``specs`` are built
        (or reused) at construction and packed into shared memory.
    shards:
        Number of contiguous partitions (clamped to the database size).
    specs:
        Pruner-chain specs (service syntax) the shards must be able to
        serve; the union of their families decides what gets packed.
    mode:
        ``"process"`` — persistent worker pool over shared memory (the
        production path); ``"inline"`` — the identical pipeline executed
        in-process, for deterministic tests and cheap single-shard use.
    workers:
        Pool size (process mode); defaults to the shard count.
    exact_stage:
        Scheduling policy for two-stage pruners' exact bounds on
        refine-phase survivors: ``"auto"`` pays them only when the
        pruner declares them cheap (``exact_stage_cheap``), ``"always"``
        / ``"never"`` force either way.  Pure scheduling — answers are
        identical under all three; only the pruned-vs-refined credit
        split moves (deterministically, for any fixed policy).
    max_retries:
        Re-executions allowed per failed shard task before the query
        degrades to the serial engine (which still returns the exact
        answer).
    retry_backoff_s:
        Base backoff before retry ``n`` (doubles each attempt).
    round_timeout_s:
        Deadline for collecting one dispatch wave; a shard that misses
        it is treated as hung (worker terminated and respawned, task
        retried).  ``None`` disables timeouts.
    fault_plan:
        Optional :class:`~repro.core.faults.FaultPlan` — deterministic
        fault injection for the chaos suite.  The plan is consumed
        coordinator-side as tasks are dispatched, so retries run clean
        unless the plan says otherwise.
    verify_checksums:
        Verify the per-task content checksum every worker result
        carries; a mismatch is treated as a transient fault (retry).
    """

    def __init__(
        self,
        database: TrajectoryDatabase,
        shards: int = 2,
        *,
        specs: Sequence[str] = ("histogram,qgram",),
        mode: str = "process",
        workers: Optional[int] = None,
        max_triangle: int = 50,
        refine_batch_size: int = DEFAULT_REFINE_BATCH_SIZE,
        exact_stage: str = "auto",
        max_retries: int = 2,
        retry_backoff_s: float = 0.02,
        round_timeout_s: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        verify_checksums: bool = True,
        pack_shard: Optional[
            Callable[[int, int, Sequence[str], int], Dict[str, object]]
        ] = None,
    ) -> None:
        if mode not in ("process", "inline"):
            raise ValueError("mode must be 'process' or 'inline'")
        if exact_stage not in ("auto", "always", "never"):
            raise ValueError("exact_stage must be 'auto', 'always', or 'never'")
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self._database = database
        self.shards = min(int(shards), len(database))
        self.mode = mode
        self.workers = int(workers) if workers else self.shards
        self._max_triangle = int(max_triangle)
        self._round_size = max(2, int(refine_batch_size))
        self._exact_stage = exact_stage

        canonical: List[str] = []
        for spec in specs:
            normalized = canonical_pruner_spec(spec)
            if normalized not in canonical:
                canonical.append(normalized)
        if not canonical:
            canonical = [""]
        self.specs = tuple(canonical)
        self._packed_parts = sorted(
            {part for spec in self.specs for part in spec.split(",") if part}
        )

        sizes = [len(piece) for piece in np.array_split(np.arange(len(database)), self.shards)]
        starts = np.zeros(self.shards + 1, dtype=np.int64)
        np.cumsum(sizes, out=starts[1:])
        self._starts = starts
        self._shard_ids = np.repeat(np.arange(self.shards), sizes)

        self._blocks: List[SharedArrayBlock] = []
        shard_payload: Dict[int, Dict[str, object]] = {}
        for shard_id in range(self.shards):
            if pack_shard is not None:
                # Mmap-attach mode (tiered stores): the callback returns
                # a file-array manifest describing row slices of the
                # store's own files — nothing is packed into shm, so
                # there is nothing to unlink at close either.
                shard_payload[shard_id] = pack_shard(
                    int(starts[shard_id]),
                    int(starts[shard_id + 1]),
                    self._packed_parts,
                    self._max_triangle,
                )
                continue
            arrays, meta = _pack_shard(
                database,
                int(starts[shard_id]),
                int(starts[shard_id + 1]),
                self._packed_parts,
                self._max_triangle,
            )
            block = SharedArrayBlock.create(arrays)
            self._blocks.append(block)
            shard_payload[shard_id] = {"manifest": block.manifest, "meta": meta}
        self._payload = {"shards": shard_payload}

        self._pools: Optional[List[ProcessPoolExecutor]] = None
        self._context = None
        self._value = None
        self._inline_state: Optional[_WorkerState] = None
        self._start_method: Optional[str] = None
        self._parent_chains: Dict[str, List[Pruner]] = {}
        self._closed = False

        self.max_retries = int(max_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.round_timeout_s = (
            None if round_timeout_s is None else float(round_timeout_s)
        )
        self.fault_plan = fault_plan
        self.verify_checksums = bool(verify_checksums)
        self._degraded = False
        self._lifetime: Dict[str, int] = {name: 0 for name in RECOVERY_FIELDS}
        self._lifetime["degraded_queries"] = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._database)

    @property
    def database(self) -> TrajectoryDatabase:
        return self._database

    @property
    def boundaries(self) -> List[Tuple[int, int]]:
        """Global ``[start, stop)`` row range of every shard."""
        return [
            (int(self._starts[s]), int(self._starts[s + 1]))
            for s in range(self.shards)
        ]

    @property
    def start_method(self) -> Optional[str]:
        """Start method of the worker pool (None before first use / inline)."""
        return self._start_method

    def supports(self, spec: str) -> bool:
        """Whether the packed artifacts can serve ``spec``."""
        try:
            parts = [p for p in canonical_pruner_spec(spec).split(",") if p]
        except ValueError:
            return False
        return all(part in self._packed_parts for part in parts)

    @property
    def degraded(self) -> bool:
        """True after a query fell back to serial, until a sharded query
        (or :meth:`health_check`) succeeds again."""
        return self._degraded

    def resilience(self) -> Dict[str, object]:
        """Lifetime recovery counters plus the current degraded flag."""
        snapshot: Dict[str, object] = dict(self._lifetime)
        snapshot["degraded"] = self._degraded
        return snapshot

    def health_check(self, timeout: float = 5.0) -> bool:
        """Probe every worker slot; respawn dead ones; clear degraded.

        Returns True when every slot answered a ping (after at most one
        respawn each).  A True result clears the degraded flag — the
        sharded path is serviceable again.
        """
        self._ensure_ready()
        if self.mode == "inline":
            self._degraded = False
            return True
        healthy = True
        for index in range(len(self._pools)):
            try:
                self._pools[index].submit(_pool_ping).result(timeout=timeout)
                continue
            except Exception as error:
                if _classify(error) is None:
                    raise
            self._respawn_slot(index)
            self._lifetime["respawns"] += 1
            try:
                self._pools[index].submit(_pool_ping).result(timeout=timeout)
            except Exception:
                healthy = False
        if healthy:
            self._degraded = False
        return healthy

    # ------------------------------------------------------------------
    # Execution plumbing
    # ------------------------------------------------------------------
    def _ensure_ready(self) -> None:
        if self._closed:
            raise RuntimeError("sharded database is closed")
        if self.mode == "inline":
            if self._inline_state is None:
                self._value = _InlineValue()
                self._inline_state = _WorkerState(self._payload, self._value)
            return
        if self._pools is None:
            context, method = process_context("fork")
            self._start_method = method
            # Synchronized values travel only by inheritance, so the
            # cooperative bound needs fork; without it workers fall back
            # to the frozen round threshold (still exact, just no
            # mid-round cross-shard tightening).
            self._value = context.Value("d", float("inf"), lock=False) if method == "fork" else None
            # One single-worker pool per worker slot, with shards pinned
            # to slots (shard s -> pool s % W): a shard's tasks always
            # land on the same process, so its attached block and its
            # per-query pruner state are built exactly once — a shared
            # pool's round-robin would rebuild the query state on
            # whichever worker each round's task happened to reach.
            self._context = context
            slots = max(1, min(self.workers, self.shards))
            self._pools = [self._new_pool() for _ in range(slots)]

    def _new_pool(self) -> ProcessPoolExecutor:
        # Fresh pools reuse the same initargs: under fork they travel by
        # memory inheritance, so a respawned worker keeps the *same*
        # shared cooperative-bound Value and shard manifests.
        return ProcessPoolExecutor(
            max_workers=1,
            mp_context=self._context,
            initializer=_pool_initializer,
            initargs=(self._payload, self._value),
        )

    def _respawn_slot(self, index: int) -> None:
        """Terminate slot ``index``'s (dead or hung) pool; start fresh."""
        terminate_pool(self._pools[index])
        self._pools[index] = self._new_pool()

    def _pool_for(self, shard_id: int) -> ProcessPoolExecutor:
        return self._pools[shard_id % len(self._pools)]

    def _parent_chain(self, spec: str) -> List[Pruner]:
        if spec not in self._parent_chains:
            from ..service.pruning import build_pruners

            self._parent_chains[spec] = build_pruners(
                self._database, spec, max_triangle=self._max_triangle
            )
        return self._parent_chains[spec]

    # ------------------------------------------------------------------
    # Public search API
    # ------------------------------------------------------------------
    def knn_search(
        self,
        query: Trajectory,
        k: int,
        spec: Optional[str] = None,
        early_abandon: bool = False,
        refine_batch_size: Optional[int] = None,
        edr_kernel: Optional[str] = None,
    ) -> Tuple[List[Neighbor], ShardedSearchStats]:
        """Exact k-NN, byte-for-byte equal to the serial ``knn_search``."""
        return self._run(
            query, spec, k=k, radius=None,
            early_abandon=early_abandon, refine_batch_size=refine_batch_size,
            edr_kernel=edr_kernel,
        )

    def knn_sorted_search(
        self,
        query: Trajectory,
        k: int,
        spec: Optional[str] = None,
        early_abandon: bool = False,
        refine_batch_size: Optional[int] = None,
        edr_kernel: Optional[str] = None,
    ) -> Tuple[List[Neighbor], ShardedSearchStats]:
        """Alias of :meth:`knn_search` — the sharded pipeline *is* a
        sorted scan (global quick-bound order with a sorted break), and
        the canonical result list makes the serial ``knn_search`` and
        ``knn_sorted_search`` answers identical already."""
        return self.knn_search(
            query, k, spec=spec, early_abandon=early_abandon,
            refine_batch_size=refine_batch_size, edr_kernel=edr_kernel,
        )

    def range_search(
        self,
        query: Trajectory,
        radius: float,
        spec: Optional[str] = None,
        early_abandon: bool = False,
        refine_batch_size: Optional[int] = None,
        edr_kernel: Optional[str] = None,
    ) -> Tuple[List[Neighbor], ShardedSearchStats]:
        """Exact range query; answers equal the serial ``range_search``."""
        if radius < 0.0:
            raise ValueError("radius must be non-negative")
        return self._run(
            query, spec, k=None, radius=float(radius),
            early_abandon=early_abandon, refine_batch_size=refine_batch_size,
            edr_kernel=edr_kernel,
        )

    def subknn_search(
        self,
        query: Trajectory,
        k: int,
        spec: Optional[str] = None,
        alpha: float = DEFAULT_WINDOW_ALPHA,
        min_window: Optional[int] = None,
        max_window: Optional[int] = None,
        early_abandon: bool = False,
        refine_batch_size: Optional[int] = None,
        edr_kernel: Optional[str] = None,
    ) -> Tuple[List[WindowMatch], ShardedSearchStats]:
        """Exact top-k banded-window search, byte-equal to the serial
        :func:`repro.core.subtrajectory.subknn_search` — answers and the
        window counters alike (the round engine never tightens a
        worker's bound mid-round, so abandonment decisions match)."""
        start_time = time.perf_counter()
        self._ensure_ready()
        spec = canonical_pruner_spec(spec if spec is not None else self.specs[0])
        if not self.supports(spec):
            raise ValueError(
                f"spec {spec!r} needs artifact families outside the packed set "
                f"{self._packed_parts}"
            )
        round_size = (
            self._round_size
            if refine_batch_size is None
            else max(2, int(refine_batch_size))
        )
        recovery = {name: 0 for name in RECOVERY_FIELDS}
        try:
            answer, stats = self._run_subknn(
                query, spec, k, alpha, min_window, max_window,
                early_abandon, round_size, recovery, edr_kernel,
            )
            self._degraded = False
        except _ShardFailure:
            answer, stats = self._degrade_subknn(
                query, spec, k, alpha, min_window, max_window,
                early_abandon, round_size, edr_kernel,
            )
        for name in RECOVERY_FIELDS:
            setattr(stats, name, recovery[name])
            self._lifetime[name] += recovery[name]
        if stats.degraded:
            self._lifetime["degraded_queries"] += 1
        stats.elapsed_seconds = time.perf_counter() - start_time
        return answer, stats

    # ------------------------------------------------------------------
    # The frozen-bound round engine
    # ------------------------------------------------------------------
    def _run(
        self,
        query: Trajectory,
        spec: Optional[str],
        k: Optional[int],
        radius: Optional[float],
        early_abandon: bool,
        refine_batch_size: Optional[int],
        edr_kernel: Optional[str] = None,
    ) -> Tuple[List[Neighbor], ShardedSearchStats]:
        start_time = time.perf_counter()
        self._ensure_ready()
        spec = canonical_pruner_spec(spec if spec is not None else self.specs[0])
        if not self.supports(spec):
            raise ValueError(
                f"spec {spec!r} needs artifact families outside the packed set "
                f"{self._packed_parts}"
            )
        round_size = (
            self._round_size
            if refine_batch_size is None
            else max(2, int(refine_batch_size))
        )
        recovery = {name: 0 for name in RECOVERY_FIELDS}
        try:
            answer, stats = self._run_sharded(
                query, spec, k, radius, early_abandon, round_size, recovery,
                edr_kernel,
            )
            self._degraded = False
        except _ShardFailure:
            answer, stats = self._degrade(
                query, spec, k, radius, early_abandon, round_size, edr_kernel
            )
        for name in RECOVERY_FIELDS:
            setattr(stats, name, recovery[name])
            self._lifetime[name] += recovery[name]
        if stats.degraded:
            self._lifetime["degraded_queries"] += 1
        stats.elapsed_seconds = time.perf_counter() - start_time
        return answer, stats

    def _degrade(
        self,
        query: Trajectory,
        spec: str,
        k: Optional[int],
        radius: Optional[float],
        early_abandon: bool,
        round_size: int,
        edr_kernel: Optional[str] = None,
    ) -> Tuple[List[Neighbor], ShardedSearchStats]:
        """Last resort: rerun the whole query on the serial engine.

        The serial engines are pure functions of the database and the
        query, so the answer is exact regardless of what the sharded
        attempt got through before failing; its partial per-shard
        tallies are discarded and the returned stats are the serial
        engine's own (marked ``degraded``).
        """
        chain = self._parent_chain(spec)
        if radius is None:
            answer, serial = knn_search(
                self._database, query, k, chain,
                early_abandon=early_abandon, refine_batch_size=round_size,
                edr_kernel=edr_kernel,
            )
        else:
            from .rangequery import range_search

            answer, serial = range_search(
                self._database, query, radius, chain,
                early_abandon=early_abandon, refine_batch_size=round_size,
                edr_kernel=edr_kernel,
            )
        self._degraded = True
        stats = ShardedSearchStats(
            database_size=serial.database_size,
            true_distance_computations=serial.true_distance_computations,
            pruned_by=dict(serial.pruned_by),
            per_shard=[],
            rounds=0,
            shards=self.shards,
            start_method=self._start_method if self.mode == "process" else None,
            degraded=True,
        )
        stats.kernel = serial.kernel
        stats.kernel_buckets = dict(serial.kernel_buckets)
        stats.kernel_cells = dict(serial.kernel_cells)
        stats.kernel_seconds = dict(serial.kernel_seconds)
        return answer, stats

    def _degrade_subknn(
        self,
        query: Trajectory,
        spec: str,
        k: int,
        alpha: float,
        min_window: Optional[int],
        max_window: Optional[int],
        early_abandon: bool,
        round_size: int,
        edr_kernel: Optional[str] = None,
    ) -> Tuple[List[WindowMatch], ShardedSearchStats]:
        """Serial rerun of a failed sharded window query (see
        :meth:`_degrade`); the window counters carry over verbatim."""
        chain = self._parent_chain(spec)
        answer, serial = _serial_subknn_search(
            self._database, query, k, chain, alpha=alpha,
            min_window=min_window, max_window=max_window,
            early_abandon=early_abandon, refine_batch_size=round_size,
            edr_kernel=edr_kernel,
        )
        self._degraded = True
        stats = ShardedSearchStats(
            database_size=serial.database_size,
            true_distance_computations=serial.true_distance_computations,
            pruned_by=dict(serial.pruned_by),
            per_shard=[],
            rounds=0,
            shards=self.shards,
            start_method=self._start_method if self.mode == "process" else None,
            degraded=True,
        )
        stats.kernel = serial.kernel
        stats.kernel_buckets = dict(serial.kernel_buckets)
        stats.kernel_cells = dict(serial.kernel_cells)
        stats.kernel_seconds = dict(serial.kernel_seconds)
        stats.windows_total = serial.windows_total
        stats.windows_evaluated = serial.windows_evaluated
        stats.windows_pruned = serial.windows_pruned
        stats.windows_abandoned = serial.windows_abandoned
        return answer, stats

    def _run_sharded(
        self,
        query: Trajectory,
        spec: str,
        k: Optional[int],
        radius: Optional[float],
        early_abandon: bool,
        round_size: int,
        recovery: Dict[str, int],
        edr_kernel: Optional[str] = None,
    ) -> Tuple[List[Neighbor], ShardedSearchStats]:
        knn = radius is None
        result = _ResultList(k) if knn else None
        # Kernel routing is resolved once, coordinator-side ("auto"
        # autotunes against the parent database; forked workers inherit
        # nothing — they receive the concrete table in the task tuple).
        plan = resolve_kernel_plan(self._database, edr_kernel)
        if plan.default == LEGACY_KERNEL and not plan.table:
            kernel_spec = None
        else:
            kernel_spec = (plan.default, tuple(sorted(plan.table.items())))
        range_hits: List[Neighbor] = []
        total = len(self._database)
        per_shard = [
            SearchStats(database_size=int(self._starts[s + 1] - self._starts[s]))
            for s in range(self.shards)
        ]

        chain = self._parent_chain(spec)
        query_pruners = [pruner.for_query(query) for pruner in chain]
        names = [query_pruner.name for query_pruner in query_pruners]
        query_points = np.ascontiguousarray(query.points)
        digest = hashlib.sha1(query_points.tobytes()).hexdigest()

        if self._value is not None:
            self._value.value = radius if not knn else float("inf")

        # ---- filter phase: shard-parallel bulk quick bounds ----------
        shard_quick = self._dispatch_filter(spec, digest, query_points, recovery)
        quick: List[Optional[np.ndarray]] = []
        for position, query_pruner in enumerate(query_pruners):
            if query_pruner.dynamic:
                quick.append(None)
            else:
                quick.append(
                    np.concatenate(
                        [shard_quick[s][position] for s in range(self.shards)]
                    )
                )
        if quick and quick[0] is not None:
            order_keys = quick[0]
        elif query_pruners:
            # Dynamic primary: order by its initial (pre-scan) bounds,
            # exactly like the serial sorted engine's frozen array.
            order_keys = np.asarray(
                query_pruners[0].bulk_quick_lower_bounds(), dtype=np.float64
            )
        else:
            order_keys = np.zeros(total, dtype=np.float64)
        order = np.argsort(order_keys, kind="stable")

        exact_positions = [
            position
            for position, query_pruner in enumerate(query_pruners)
            if quick[position] is not None
            and query_pruner.two_stage
            and (
                self._exact_stage == "always"
                or (self._exact_stage == "auto" and query_pruner.exact_stage_cheap)
            )
        ]

        # ---- frozen-bound rounds -------------------------------------
        position_in_order = 0
        rounds = 0
        while position_in_order < total:
            threshold = result.best_so_far if knn else radius
            finite = np.isfinite(threshold)
            chunk: List[int] = []
            while position_in_order < total and len(chunk) < round_size:
                candidate = int(order[position_in_order])
                if finite and query_pruners:
                    if order_keys[candidate] > threshold:
                        # Sorted break: every remaining ordered bound
                        # also exceeds the frozen threshold.
                        remaining = order[position_in_order:]
                        counts = np.bincount(
                            self._shard_ids[remaining], minlength=self.shards
                        )
                        for shard_id, count in enumerate(counts.tolist()):
                            if count:
                                per_shard[shard_id].pruned_by[names[0]] = (
                                    per_shard[shard_id].pruned_by.get(names[0], 0)
                                    + count
                                )
                        position_in_order = total
                        break
                    pruned = False
                    for p, query_pruner in enumerate(query_pruners):
                        if quick[p] is None:
                            prunes = query_pruner.lower_bound(candidate, threshold) > threshold
                        else:
                            prunes = quick[p][candidate] > threshold
                        if prunes:
                            per_shard[int(self._shard_ids[candidate])].credit(names[p])
                            pruned = True
                            break
                    if pruned:
                        position_in_order += 1
                        continue
                chunk.append(candidate)
                position_in_order += 1
            if not chunk:
                continue
            rounds += 1

            groups: Dict[int, List[int]] = {}
            for candidate in chunk:
                groups.setdefault(int(self._shard_ids[candidate]), []).append(candidate)
            outcomes = self._dispatch_refine(
                groups, spec, digest, query_points, threshold,
                early_abandon, exact_positions, round_size, kernel_spec,
                result, recovery,
            )
            # Deterministic merge pass in global chunk order: stats,
            # range hits, and dynamic-pruner records all follow the
            # partition-independent order, not completion order.
            cursors = {shard_id: 0 for shard_id in groups}
            for candidate in chunk:
                shard_id = int(self._shard_ids[candidate])
                outcome = outcomes[shard_id][cursors[shard_id]]
                cursors[shard_id] += 1
                kind, payload = outcome
                if kind == "p":
                    per_shard[shard_id].credit(names[int(payload)])
                    continue
                per_shard[shard_id].true_distance_computations += 1
                distance = float(payload)
                if np.isfinite(distance):
                    for query_pruner in query_pruners:
                        query_pruner.record(candidate, distance)
                    if not knn and distance <= radius:
                        range_hits.append(Neighbor(candidate, distance))

        stats = ShardedSearchStats(
            database_size=total,
            per_shard=per_shard,
            rounds=rounds,
            shards=self.shards,
            start_method=self._start_method if self.mode == "process" else None,
        )
        stats.kernel = plan.requested
        stats.kernel_buckets = {
            str(bucket): name for bucket, name in sorted(plan.table.items())
        }
        for shard_stats in per_shard:
            shard_stats.start_method = stats.start_method
            stats.true_distance_computations += shard_stats.true_distance_computations
            for name, count in shard_stats.pruned_by.items():
                stats.pruned_by[name] = stats.pruned_by.get(name, 0) + count
        if knn:
            return result.neighbors(), stats
        range_hits.sort(key=lambda neighbor: neighbor.index)
        return range_hits, stats

    def _run_subknn(
        self,
        query: Trajectory,
        spec: str,
        k: int,
        alpha: float,
        min_window: Optional[int],
        max_window: Optional[int],
        early_abandon: bool,
        round_size: int,
        recovery: Dict[str, int],
        edr_kernel: Optional[str] = None,
    ) -> Tuple[List[WindowMatch], ShardedSearchStats]:
        result = _WindowResultList(k)
        if edr_kernel is not None:
            # Validation only — the windowed DP has a single batched
            # implementation (see the serial engine's note).
            resolve_kernel_plan(self._database, edr_kernel)
        total = len(self._database)
        query_points = np.ascontiguousarray(query.points)
        lo, hi = resolve_window_range(
            int(query_points.shape[0]), alpha, min_window, max_window
        )
        lengths = np.asarray(self._database.lengths, dtype=np.int64)
        counts = window_counts(lengths, lo, hi)
        per_shard: List[SearchStats] = []
        for s in range(self.shards):
            shard_stats = SearchStats(
                database_size=int(self._starts[s + 1] - self._starts[s])
            )
            shard_stats.windows_total = int(
                counts[self._starts[s]:self._starts[s + 1]].sum()
            )
            shard_stats.kernel = WINDOW_KERNEL
            per_shard.append(shard_stats)

        # The window bounds are single-stage static arrays, so the
        # coordinator prices them against the parent chain directly —
        # no filter wave, and the subknn task ships no pruner state.
        chain = self._parent_chain(spec)
        query_pruners = [pruner.for_query(query) for pruner in chain]
        names = [query_pruner.name for query_pruner in query_pruners]
        window_bounds = [
            np.asarray(
                query_pruner.bulk_window_lower_bounds(), dtype=np.float64
            )
            for query_pruner in query_pruners
        ]
        order_keys = (
            window_bounds[0] if window_bounds else np.zeros(total, dtype=np.float64)
        )
        order = np.argsort(order_keys, kind="stable")

        position_in_order = 0
        rounds = 0
        while position_in_order < total:
            threshold = result.best_so_far
            finite = np.isfinite(threshold)
            chunk: List[int] = []
            while position_in_order < total and len(chunk) < round_size:
                candidate = int(order[position_in_order])
                if finite and query_pruners:
                    if order_keys[candidate] > threshold:
                        # Sorted break: the primary window bound only
                        # grows from here, retiring every remaining
                        # candidate — and all of their windows.
                        remaining = order[position_in_order:]
                        trajectory_tallies = np.bincount(
                            self._shard_ids[remaining], minlength=self.shards
                        )
                        window_tallies = np.bincount(
                            self._shard_ids[remaining],
                            weights=counts[remaining].astype(np.float64),
                            minlength=self.shards,
                        )
                        for shard_id, count in enumerate(
                            trajectory_tallies.tolist()
                        ):
                            if count:
                                per_shard[shard_id].pruned_by[names[0]] = (
                                    per_shard[shard_id].pruned_by.get(names[0], 0)
                                    + count
                                )
                                per_shard[shard_id].windows_pruned += int(
                                    window_tallies[shard_id]
                                )
                        position_in_order = total
                        break
                    pruned = False
                    for p in range(1, len(query_pruners)):
                        if window_bounds[p][candidate] > threshold:
                            shard_id = int(self._shard_ids[candidate])
                            per_shard[shard_id].credit(names[p])
                            per_shard[shard_id].windows_pruned += int(
                                counts[candidate]
                            )
                            pruned = True
                            break
                    if pruned:
                        position_in_order += 1
                        continue
                chunk.append(candidate)
                position_in_order += 1
            if not chunk:
                continue
            rounds += 1
            bound = float(threshold) if (early_abandon and finite) else float("inf")

            groups: Dict[int, List[int]] = {}
            for candidate in chunk:
                groups.setdefault(int(self._shard_ids[candidate]), []).append(candidate)
            outcomes = self._dispatch_subknn(
                groups, query_points, bound, lo, hi, round_size, result, recovery,
            )
            cursors = {shard_id: 0 for shard_id in groups}
            for candidate in chunk:
                shard_id = int(self._shard_ids[candidate])
                outcome = outcomes[shard_id][cursors[shard_id]]
                cursors[shard_id] += 1
                per_shard[shard_id].true_distance_computations += 1
                per_shard[shard_id].windows_evaluated += int(outcome[3])
                per_shard[shard_id].windows_abandoned += int(outcome[4])

        stats = ShardedSearchStats(
            database_size=total,
            per_shard=per_shard,
            rounds=rounds,
            shards=self.shards,
            start_method=self._start_method if self.mode == "process" else None,
        )
        stats.kernel = WINDOW_KERNEL
        stats.windows_total = int(counts.sum())
        for shard_stats in per_shard:
            shard_stats.start_method = stats.start_method
            stats.true_distance_computations += (
                shard_stats.true_distance_computations
            )
            stats.windows_evaluated += shard_stats.windows_evaluated
            stats.windows_pruned += shard_stats.windows_pruned
            stats.windows_abandoned += shard_stats.windows_abandoned
            for name, count in shard_stats.pruned_by.items():
                stats.pruned_by[name] = stats.pruned_by.get(name, 0) + count
        return result.matches(), stats

    # ------------------------------------------------------------------
    # Dispatch (process pool or inline), with bounded recovery
    # ------------------------------------------------------------------
    def _directives_for(self, point: str, shard_id: int) -> Tuple[Fault, ...]:
        if self.fault_plan is None:
            return ()
        return self.fault_plan.directives(point, shard_id)

    def _submit(self, point: str, shard_id: int, args: tuple, directives):
        fn = {
            "filter": _pool_filter,
            "refine": _pool_refine,
            "subknn": _pool_subknn,
        }[point]
        return self._pool_for(shard_id).submit(fn, shard_id, *args, directives)

    def _inline_execute(
        self, point: str, shard_id: int, args: tuple, directives
    ):
        # Inline mode cannot interrupt a synchronous call, so a slow
        # directive that would blow the round deadline becomes a
        # deterministic pre-execution timeout instead of a sleep —
        # exactly the coordinator-visible outcome of the process path.
        if self.round_timeout_s is not None:
            delay = sum(d.delay_s for d in directives if d.kind == "slow")
            if delay >= self.round_timeout_s:
                raise WorkerTimeout(
                    f"shard {shard_id} {point} task exceeded the "
                    f"{self.round_timeout_s}s round deadline"
                )
        state = self._inline_state
        _faults.apply(
            directives, inline=True, drop=lambda: state.drop(shard_id)
        )
        runtime = state.runtime(shard_id)
        if point == "filter":
            payload = runtime.filter(*args)
        elif point == "subknn":
            payload = runtime.subknn(*args)
        else:
            payload = runtime.refine(*args, self._value)
        return _faults.wrap_result(payload, directives)

    def _attempt(
        self,
        point: str,
        shard_id: int,
        args: tuple,
        future=None,
        deadline: Optional[float] = None,
    ):
        """One execution of a shard task; verified payload or raise."""
        if future is None:
            directives = self._directives_for(point, shard_id)
            if self.mode == "inline":
                wrapped = self._inline_execute(point, shard_id, args, directives)
            else:
                wrapped = self._submit(point, shard_id, args, directives).result(
                    timeout=self.round_timeout_s
                )
        else:
            timeout = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            wrapped = future.result(timeout=timeout)
        payload, digest = wrapped
        if self.verify_checksums and _faults.checksum(payload) != digest:
            raise ChecksumMismatch(
                f"shard {shard_id} returned a corrupt {point} result"
            )
        return payload

    def _recover_slot(
        self, shard_id: int, counter: str, recovery: Dict[str, int]
    ) -> None:
        """Post-failure cleanup so the retry lands on a live worker.

        Crashes and timeouts leave a dead or hung process behind: the
        slot's pool is terminated and respawned (inline: the shard
        runtime is dropped, the deterministic analogue).  Transport,
        attach, and checksum failures leave the worker alive — nothing
        to do but retry.
        """
        if counter not in ("worker_crashes", "timeouts"):
            return
        if self.mode == "inline":
            self._inline_state.drop(shard_id)
        else:
            self._respawn_slot(shard_id % len(self._pools))
        recovery["respawns"] += 1

    def _collect(
        self,
        point: str,
        shard_id: int,
        args: tuple,
        recovery: Dict[str, int],
        future=None,
        deadline: Optional[float] = None,
    ):
        """A shard task's verified payload, through bounded recovery.

        The first attempt may ride an already-submitted ``future`` (the
        parallel wave); each retry re-executes from scratch after
        backoff.  Exhausting ``max_retries`` raises
        :class:`_ShardFailure`, the signal to degrade serially.
        """
        attempt = 0
        while True:
            try:
                return self._attempt(
                    point, shard_id, args, future=future, deadline=deadline
                )
            except Exception as error:
                counter = _classify(error)
                if counter is None:
                    raise
                recovery[counter] += 1
                self._recover_slot(shard_id, counter, recovery)
                attempt += 1
                if attempt > self.max_retries:
                    raise _ShardFailure(point, shard_id) from error
                if self.retry_backoff_s > 0.0:
                    time.sleep(self.retry_backoff_s * (2 ** (attempt - 1)))
                recovery["retries"] += 1
                future = None
                deadline = None

    def _dispatch(
        self,
        point: str,
        tasks: Dict[int, tuple],
        recovery: Dict[str, int],
        merge: Optional[Callable[[int, object], None]] = None,
    ) -> Dict[int, object]:
        """Run one wave of shard tasks, resiliently; payloads by shard.

        Process mode submits every first attempt up front (the parallel
        wave shares one round deadline), then collects in sorted shard
        order — recovery for one shard runs while later shards keep
        computing.  ``merge`` is called per shard as its verified
        payload lands.  Iteration is sorted in both modes so the fault
        plan's visit counters advance deterministically.
        """
        results: Dict[int, object] = {}
        pending: Dict[int, object] = {}
        deadline = None
        if self.mode == "process":
            for shard_id in sorted(tasks):
                directives = self._directives_for(point, shard_id)
                pending[shard_id] = self._submit(
                    point, shard_id, tasks[shard_id], directives
                )
            if self.round_timeout_s is not None:
                deadline = time.monotonic() + self.round_timeout_s
        for shard_id in sorted(tasks):
            payload = self._collect(
                point,
                shard_id,
                tasks[shard_id],
                recovery,
                future=pending.get(shard_id),
                deadline=deadline,
            )
            results[shard_id] = payload
            if merge is not None:
                merge(shard_id, payload)
        return results

    def _dispatch_filter(
        self,
        spec: str,
        digest: str,
        query_points: np.ndarray,
        recovery: Dict[str, int],
    ) -> Dict[int, Dict[int, np.ndarray]]:
        tasks = {
            shard_id: (spec, digest, query_points)
            for shard_id in range(self.shards)
        }
        return self._dispatch("filter", tasks, recovery)

    def _dispatch_refine(
        self,
        groups: Dict[int, List[int]],
        spec: str,
        digest: str,
        query_points: np.ndarray,
        threshold: float,
        early_abandon: bool,
        exact_positions: List[int],
        batch_size: int,
        kernel_spec,
        result: Optional[_ResultList],
        recovery: Dict[str, int],
    ) -> Dict[int, List[Tuple[str, float]]]:
        """Run one round's shard groups; merge k-NN offers eagerly.

        Offers into the canonical result list are commutative, so they
        happen as each shard's verified payload lands — and the shared
        bound is republished immediately, tightening still-running
        shards' early-abandon budget mid-round.  Everything
        order-sensitive (stats, records) waits for the caller's
        deterministic pass.
        """
        local_groups = {
            shard_id: [c - int(self._starts[shard_id]) for c in members]
            for shard_id, members in groups.items()
        }

        def merge(shard_id: int, shard_outcomes) -> None:
            if result is None:
                return
            base = int(self._starts[shard_id])
            for local_index, (kind, payload) in zip(
                local_groups[shard_id], shard_outcomes
            ):
                if kind == "d":
                    result.offer(base + local_index, float(payload))
            if self._value is not None:
                best = result.best_so_far
                if best < self._value.value:
                    self._value.value = best

        tasks = {
            shard_id: (
                spec, digest, query_points, members, threshold,
                early_abandon, exact_positions, batch_size, kernel_spec,
            )
            for shard_id, members in local_groups.items()
        }
        return self._dispatch("refine", tasks, recovery, merge=merge)

    def _dispatch_subknn(
        self,
        groups: Dict[int, List[int]],
        query_points: np.ndarray,
        bound: float,
        lo: int,
        hi: int,
        batch_size: int,
        result: _WindowResultList,
        recovery: Dict[str, int],
    ) -> Dict[int, List[Tuple[float, int, int, int, int]]]:
        """Run one round's shard window groups; merge offers eagerly.

        Offers into the window result list are commutative, so they
        land as each shard's verified payload arrives.  Unlike
        :meth:`_dispatch_refine` there is deliberately no shared-bound
        republish: workers abandon against the frozen round threshold
        only, which is what keeps ``windows_abandoned`` byte-equal to
        the serial engine's.  Stats wait for the caller's deterministic
        pass in global chunk order.
        """
        local_groups = {
            shard_id: [c - int(self._starts[shard_id]) for c in members]
            for shard_id, members in groups.items()
        }

        def merge(shard_id: int, shard_outcomes) -> None:
            base = int(self._starts[shard_id])
            for local_index, outcome in zip(
                local_groups[shard_id], shard_outcomes
            ):
                distance = float(outcome[0])
                if np.isfinite(distance):
                    result.offer(
                        base + local_index,
                        int(outcome[1]),
                        int(outcome[2]),
                        distance,
                    )

        tasks = {
            shard_id: (query_points, members, bound, lo, hi, batch_size)
            for shard_id, members in local_groups.items()
        }
        return self._dispatch("subknn", tasks, recovery, merge=merge)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and release every shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        if self._pools is not None:
            for pool in self._pools:
                pool.shutdown(wait=True)
            self._pools = None
        if self._inline_state is not None:
            self._inline_state.close()
            self._inline_state = None
        for block in self._blocks:
            block.close()
            block.unlink()
        self._blocks = []

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
