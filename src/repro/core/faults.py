"""Deterministic fault injection for the sharded search engine.

The robustness layer in :mod:`repro.core.sharding` (bounded retries,
dead-worker respawn, per-round timeouts, checksum verification, serial
fallback) is only trustworthy if every recovery path is *exercised*, and
chaos that depends on OS scheduling cannot be asserted byte-for-byte.
This module makes faults a deterministic input instead:

* A :class:`FaultPlan` is a seeded, step-addressable list of
  :class:`FaultRule` entries.  Each rule names a **fault point** (the
  ``filter`` or ``refine`` dispatch of one shard task), a **fault
  class** (worker crash, slow worker, shared-memory attach failure,
  pipe EOF, result corruption), an optional shard, and the visit window
  (``step``/``count``) in which it fires.

* The plan lives **coordinator-side only**.  At every dispatch the
  coordinator draws the matching :class:`Fault` directives and attaches
  them to the task payload; the worker honours them via :func:`apply`.
  Because the coordinator consumes rules as it dispatches, a retried
  task naturally runs clean (unless the plan says otherwise), and a
  respawned worker cannot "forget" that a fault already fired — there
  is no worker-side plan state to reset.

* Every worker result is wrapped with a content checksum
  (:func:`checksum`) so the coordinator can detect corruption; the
  ``corrupt`` fault class mutates the payload *after* the checksum is
  taken, which is exactly what a torn write or a bad page would look
  like.

The chaos suite (``tests/test_faults.py``) drives every fault class at
every fault point and asserts that answers and per-pruner counters stay
byte-for-byte identical to the serial oracle, and that the recovery
counters account for every fault the plan reports as fired.
"""

from __future__ import annotations

import hashlib
import os
import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FAULT_POINTS",
    "SWAP_POINTS",
    "REPLICA_POINTS",
    "COUNTER_BY_KIND",
    "Fault",
    "FaultRule",
    "FaultPlan",
    "WorkerCrash",
    "WorkerTimeout",
    "ShardAttachError",
    "ChecksumMismatch",
    "apply",
    "wrap_result",
    "checksum",
    "corrupt_payload",
]

#: Fault classes a rule may inject.
FAULT_KINDS = ("crash", "slow", "attach_fail", "pipe_eof", "corrupt")

#: Dispatch sites a rule may address ("any" matches both).
FAULT_POINTS = ("filter", "refine")

#: Dispatch sites of the ingest/compaction pipeline
#: (:mod:`repro.ingest`).  Each is crossed exactly once per operation,
#: in order: a WAL append, then compaction's fold -> artifact/manifest
#: write -> CURRENT publish, and finally the serving layer's
#: generation attach.  A ``crash`` rule at any of them simulates dying
#: with every earlier effect durable and every later one absent — the
#: torn-generation windows the recovery protocol must close.
SWAP_POINTS = (
    "wal:append",
    "compact:fold",
    "compact:manifest",
    "compact:publish",
    "swap:attach",
)

#: Dispatch sites of the replicated serving tier
#: (:mod:`repro.service.replicas`).  The router draws directives once
#: per RPC it sends to a replica (``shard`` addresses the replica
#: slot), so a rule here makes one replica crash, hang, drop its pipe,
#: or corrupt its result mid-query — the failures the
#: retry-on-sibling + respawn path must absorb without changing one
#: byte of the served answer.
REPLICA_POINTS = ("replica:rpc",)

#: Which :class:`~repro.core.sharding.ShardedSearchStats` recovery
#: counter each fault class lands in when the coordinator detects it.
COUNTER_BY_KIND = {
    "crash": "worker_crashes",
    "slow": "timeouts",
    "attach_fail": "attach_failures",
    "pipe_eof": "transport_errors",
    "corrupt": "checksum_failures",
}


# ----------------------------------------------------------------------
# Failure exceptions (raised worker-side, classified coordinator-side)
# ----------------------------------------------------------------------
class WorkerCrash(RuntimeError):
    """Inline-mode stand-in for a dead worker process.

    In process mode a crash is the real thing (``os._exit`` →
    ``BrokenProcessPool``); inline mode raises this instead so the
    coordinator's recovery path is identical and deterministic.
    """


class WorkerTimeout(RuntimeError):
    """Inline-mode stand-in for a round-deadline expiry."""


class ShardAttachError(RuntimeError):
    """A shard's shared-memory block could not be attached."""


class ChecksumMismatch(RuntimeError):
    """A worker result failed checksum verification."""


# ----------------------------------------------------------------------
# Directives
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fault:
    """One injected behaviour, attached to a single dispatched task."""

    kind: str
    delay_s: float = 0.0


@dataclass(frozen=True)
class FaultRule:
    """A step-addressable fault: fire ``kind`` at visits
    ``[step, step + count)`` of the matching ``(point, shard)`` stream.

    ``point`` is ``"filter"``, ``"refine"``, or ``"any"``; ``shard`` of
    ``None`` matches every shard (the rule's visit counter then counts
    dispatches to *any* shard at that point).  ``count`` above 1 makes
    the fault persistent enough to defeat retries — the way to force the
    serial-fallback path deterministically.
    """

    point: str
    kind: str
    shard: Optional[int] = None
    step: int = 0
    count: int = 1
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS + SWAP_POINTS + REPLICA_POINTS + (
            "any",
        ):
            raise ValueError(f"unknown fault point {self.point!r}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.step < 0 or self.count < 1:
            raise ValueError("step must be >= 0 and count >= 1")


@dataclass
class _RuleState:
    visits: int = 0
    fired: int = 0


class FaultPlan:
    """A deterministic schedule of faults, consumed by the coordinator.

    The coordinator calls :meth:`directives` once per dispatched shard
    task (including retries — a retry is the next visit, so a rule with
    ``count > 1`` can fail the retry too).  ``fired`` records every
    injection as ``(point, shard, kind)`` so tests can assert that the
    engine's recovery counters account for each one.
    """

    def __init__(self, rules: Sequence[FaultRule]) -> None:
        self.rules: List[FaultRule] = list(rules)
        self._states: List[_RuleState] = [_RuleState() for _ in self.rules]
        self.fired: List[Tuple[str, int, str]] = []

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        shards: int,
        faults: int = 3,
        kinds: Sequence[str] = FAULT_KINDS,
        points: Sequence[str] = FAULT_POINTS,
        max_step: int = 2,
        delay_s: float = 0.05,
    ) -> "FaultPlan":
        """A seeded random plan — the chaos suite's fuzzing entry point."""
        rng = random.Random(seed)
        rules = [
            FaultRule(
                point=rng.choice(list(points)),
                kind=rng.choice(list(kinds)),
                shard=rng.choice([None] + list(range(shards))),
                step=rng.randrange(max_step + 1),
                delay_s=delay_s,
            )
            for _ in range(faults)
        ]
        return cls(rules)

    def directives(self, point: str, shard: int) -> Tuple[Fault, ...]:
        """Draw the faults that fire at this visit of ``(point, shard)``."""
        out: List[Fault] = []
        for rule, state in zip(self.rules, self._states):
            if rule.point != "any" and rule.point != point:
                continue
            if rule.shard is not None and rule.shard != shard:
                continue
            visit = state.visits
            state.visits += 1
            if rule.step <= visit < rule.step + rule.count:
                state.fired += 1
                self.fired.append((point, int(shard), rule.kind))
                out.append(Fault(rule.kind, rule.delay_s))
        return tuple(out)

    def fired_by_kind(self) -> Dict[str, int]:
        """How many times each fault class was injected so far."""
        tally: Dict[str, int] = {}
        for _, _, kind in self.fired:
            tally[kind] = tally.get(kind, 0) + 1
        return tally

    @property
    def exhausted(self) -> bool:
        """True when every rule has fired its full ``count``."""
        return all(
            state.fired >= rule.count
            for rule, state in zip(self.rules, self._states)
        )


# ----------------------------------------------------------------------
# Worker-side application
# ----------------------------------------------------------------------
def apply(
    directives: Sequence[Fault],
    *,
    inline: bool,
    drop: Optional[Callable[[], None]] = None,
) -> None:
    """Honour the pre-compute directives of one task, worker-side.

    ``slow`` sleeps; ``crash`` kills the process (``os._exit``) or, in
    inline mode, raises :class:`WorkerCrash`; ``pipe_eof`` raises
    :class:`EOFError` (a transport-looking failure that leaves the
    worker alive); ``attach_fail`` drops the cached shard runtime via
    ``drop`` (forcing a reattach on retry) and raises
    :class:`ShardAttachError`.  ``corrupt`` is post-compute and handled
    by :func:`wrap_result`.
    """
    for directive in directives:
        if directive.kind == "slow":
            time.sleep(directive.delay_s)
        elif directive.kind == "crash":
            if inline:
                raise WorkerCrash("injected worker crash")
            os._exit(13)
        elif directive.kind == "pipe_eof":
            raise EOFError("injected pipe EOF")
        elif directive.kind == "attach_fail":
            if drop is not None:
                drop()
            raise ShardAttachError("injected shared-memory attach failure")


def wrap_result(payload, directives: Sequence[Fault]) -> Tuple[object, str]:
    """Checksum a task result, then apply any ``corrupt`` directive.

    The checksum is always taken over the *true* payload, so a corrupt
    directive produces exactly the signature of a torn result: payload
    and checksum that no longer agree.
    """
    digest = checksum(payload)
    if any(directive.kind == "corrupt" for directive in directives):
        payload = corrupt_payload(payload)
    return payload, digest


# ----------------------------------------------------------------------
# Checksums
# ----------------------------------------------------------------------
def checksum(payload) -> str:
    """Content hash of a task result (nested dict/list/array/scalars)."""
    digest = hashlib.sha1()
    _feed(digest, payload)
    return digest.hexdigest()


def _feed(digest, node) -> None:
    if isinstance(node, dict):
        digest.update(b"{")
        for key in sorted(node, key=repr):
            digest.update(repr(key).encode())
            _feed(digest, node[key])
        digest.update(b"}")
    elif isinstance(node, (list, tuple)):
        digest.update(b"[")
        for item in node:
            _feed(digest, item)
        digest.update(b"]")
    elif isinstance(node, np.ndarray):
        array = np.ascontiguousarray(node)
        digest.update(array.dtype.str.encode())
        digest.update(repr(array.shape).encode())
        digest.update(array.tobytes())
    elif node is None:
        digest.update(b"~")
    else:
        digest.update(repr(node).encode())


def corrupt_payload(payload):
    """A deterministically perturbed copy of a task result.

    Flips the first numeric leaf it finds (arrays included); payloads
    with no numeric leaf get an extra sentinel entry instead, so the
    checksum always changes.
    """
    corrupted, changed = _corrupt(payload)
    if changed:
        return corrupted
    if isinstance(corrupted, dict):
        corrupted["__corrupt__"] = 1
        return corrupted
    if isinstance(corrupted, list):
        corrupted.append("__corrupt__")
        return corrupted
    return ("__corrupt__", corrupted)


def _corrupt(node) -> Tuple[object, bool]:
    if isinstance(node, np.ndarray):
        if node.size:
            copy = np.array(node)
            flat = copy.reshape(-1)
            flat[0] = flat[0] + 1 if np.issubdtype(copy.dtype, np.number) else flat[0]
            return copy, bool(np.issubdtype(copy.dtype, np.number))
        return node, False
    if isinstance(node, dict):
        out, changed = {}, False
        for key, value in node.items():
            if changed:
                out[key] = value
            else:
                out[key], changed = _corrupt(value)
        return out, changed
    if isinstance(node, (list, tuple)):
        out_list: List[object] = []
        changed = False
        for value in node:
            if changed:
                out_list.append(value)
            else:
                item, changed = _corrupt(value)
                out_list.append(item)
        return (tuple(out_list) if isinstance(node, tuple) else out_list), changed
    if isinstance(node, bool) or node is None or isinstance(node, str):
        return node, False
    if isinstance(node, (int, float)):
        return node + 1, True
    return node, False
