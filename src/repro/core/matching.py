"""The ε-matching predicate shared by EDR and LCSS (paper Definition 1).

Two trajectory elements *match* when every coordinate differs by at most
the matching threshold ε.  Quantizing the element distance to {0, 1} this
way is what makes EDR (and LCSS) robust to outliers: a wildly wrong sample
costs exactly one edit operation instead of contributing its full
magnitude to the distance.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .trajectory import Trajectory

__all__ = ["elements_match", "match_bits", "match_matrix", "suggest_epsilon"]


def elements_match(r: np.ndarray, s: np.ndarray, epsilon: float) -> bool:
    """``match(r, s)``: true iff ``|r_k - s_k| <= epsilon`` on every axis."""
    r = np.asarray(r, dtype=np.float64).ravel()
    s = np.asarray(s, dtype=np.float64).ravel()
    if r.shape != s.shape:
        raise ValueError("elements must have the same arity to match")
    return bool(np.all(np.abs(r - s) <= epsilon))


def match_matrix(
    first: Union[Trajectory, np.ndarray],
    second: Union[Trajectory, np.ndarray],
    epsilon: float,
) -> np.ndarray:
    """Boolean matrix ``M[i, j] = match(first_i, second_j)``.

    Computed with broadcasting so the quadratic dynamic programs can look
    matches up in O(1) per cell.  Shapes: ``first`` is ``(m, d)``,
    ``second`` is ``(n, d)``, result is ``(m, n)``.
    """
    a = first.points if isinstance(first, Trajectory) else np.asarray(first)
    b = second.points if isinstance(second, Trajectory) else np.asarray(second)
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    if a.shape[1] != b.shape[1]:
        raise ValueError(
            f"arity mismatch: {a.shape[1]}-d vs {b.shape[1]}-d elements"
        )
    # One 2-D outer comparison per axis: same result as broadcasting the
    # full (m, n, d) difference tensor, at a fraction of the allocation.
    matches = np.abs(a[:, 0][:, None] - b[:, 0][None, :]) <= epsilon
    for axis in range(1, a.shape[1]):
        if not matches.any():
            break
        matches &= np.abs(a[:, axis][:, None] - b[:, axis][None, :]) <= epsilon
    return matches


def match_bits(
    first: Union[Trajectory, np.ndarray],
    second: Union[Trajectory, np.ndarray],
    epsilon: float,
) -> np.ndarray:
    """:func:`match_matrix` rows packed into ``uint64`` bit words.

    Row ``i`` of the result encodes ``match(first_i, second_j)`` for
    every ``j``: bit ``j % 64`` of word ``j // 64`` (little-endian bit
    order, so bit position equals element position).  Shape is
    ``(m, ceil(n / 64))``; padding bits beyond ``n - 1`` are zero —
    the bit-parallel kernels rely on padding never matching.
    """
    matches = match_matrix(first, second, epsilon)
    m, n = matches.shape
    words = (n + 63) // 64
    if words == 0:
        return np.zeros((m, 0), dtype=np.uint64)
    padded = np.zeros((m, words * 64), dtype=bool)
    padded[:, :n] = matches
    packed = np.packbits(padded, axis=1, bitorder="little")
    return packed.view(np.uint64)


def suggest_epsilon(trajectories, fraction: float = 0.25) -> float:
    """The paper's heuristic matching threshold.

    Section 3.2 reports (confirmed by Vlachos, personal communication)
    that setting ε to a quarter of the maximum standard deviation of the
    trajectories gives the best clustering results.  ``fraction`` exposes
    the quarter as a tunable.
    """
    trajectories = list(trajectories)
    if not trajectories:
        raise ValueError("need at least one trajectory to suggest epsilon")
    if fraction <= 0.0:
        raise ValueError("fraction must be positive")
    return fraction * max(t.max_std() for t in trajectories)
