"""Near-triangle-inequality pruning for EDR (paper Section 4.2, Theorem 5).

EDR is not a metric — the ε quantization breaks the triangle inequality —
but a weakened form survives:

    ``EDR(Q, S) + EDR(S, R) + |S| >= EDR(Q, R)``

Rearranged, ``EDR(Q, R) - EDR(R, S) - |S|`` is a lower bound on
``EDR(Q, S)`` whenever ``EDR(Q, R)`` (computed earlier in this query) and
``EDR(R, S)`` (precomputed) are known.  The search keeps up to
``max_triangle`` *reference trajectories* — in the paper, simply the
first trajectories whose true distance the query computes — together with
their precomputed distance column to the whole database.

The ``|S|`` slack makes this a weak filter: with equal-length databases
it never prunes (the paper observes the same), which Table 3 reproduces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .edr import edr
from .trajectory import Trajectory

__all__ = [
    "near_triangle_lower_bound",
    "NearTrianglePruner",
    "build_reference_columns",
]


def near_triangle_lower_bound(
    distance_q_to_reference: float,
    distance_reference_to_candidate: float,
    candidate_length: int,
) -> float:
    """``EDR(Q, R) - EDR(R, S) - |S|``, a lower bound of ``EDR(Q, S)``."""
    return (
        distance_q_to_reference
        - distance_reference_to_candidate
        - candidate_length
    )


class NearTrianglePruner:
    """Query-time state for near-triangle pruning.

    Parameters
    ----------
    reference_columns:
        Map from a database trajectory index (a potential reference) to
        its precomputed EDR distance column — ``column[j] = EDR(R, S_j)``
        for every database trajectory ``S_j``.  Built once per database
        by :class:`repro.core.database.TrajectoryDatabase`.
    max_triangle:
        Maximum number of reference trajectories to retain, mirroring the
        paper's buffer-bounded ``maxTriangle``.
    """

    def __init__(
        self,
        reference_columns: Dict[int, np.ndarray],
        max_triangle: int = 400,
    ) -> None:
        if max_triangle < 0:
            raise ValueError("max_triangle must be non-negative")
        self._reference_columns = reference_columns
        self._max_triangle = max_triangle
        self._active: List[int] = []  # the paper's procArray
        self._query_distances: Dict[int, float] = {}

    @property
    def reference_count(self) -> int:
        """Number of reference trajectories currently in use."""
        return len(self._active)

    def record(self, database_index: int, true_distance: float) -> None:
        """Register ``EDR(Q, S_index)`` computed during this query.

        The trajectory becomes a reference when a precomputed column for
        it exists and the reference buffer is not full — the paper's
        "first maxTriangle trajectories that fill up procArray" policy.
        """
        if not np.isfinite(true_distance):
            return
        if len(self._active) >= self._max_triangle:
            return
        if database_index not in self._reference_columns:
            return
        if database_index in self._query_distances:
            return
        self._active.append(database_index)
        self._query_distances[database_index] = true_distance

    def lower_bound(self, candidate_index: int, candidate_length: int) -> float:
        """Best available lower bound of ``EDR(Q, S_candidate)``.

        The maximum of Theorem 5's bound over all active references
        (``maxPruneDist`` in the paper's pseudo-code); zero when no
        reference applies, since EDR is never negative.
        """
        best = 0.0
        for reference_index in self._active:
            column = self._reference_columns[reference_index]
            bound = near_triangle_lower_bound(
                self._query_distances[reference_index],
                float(column[candidate_index]),
                candidate_length,
            )
            if bound > best:
                best = bound
        return best

    def can_prune(
        self, candidate_index: int, candidate_length: int, best_so_far: float
    ) -> bool:
        """True when the candidate provably cannot beat ``best_so_far``."""
        if not np.isfinite(best_so_far):
            return False
        return self.lower_bound(candidate_index, candidate_length) > best_so_far


def build_reference_columns(
    trajectories: Sequence[Trajectory],
    epsilon: float,
    reference_indices: Optional[Sequence[int]] = None,
    max_references: int = 400,
) -> Dict[int, np.ndarray]:
    """Precompute ``EDR(R, S_j)`` columns for the chosen references.

    ``reference_indices`` defaults to the first ``max_references``
    database trajectories, matching the paper's selection policy.  The
    cost is ``len(references) * N`` EDR computations, paid once offline.
    """
    if reference_indices is None:
        reference_indices = range(min(max_references, len(trajectories)))
    columns: Dict[int, np.ndarray] = {}
    for reference_index in reference_indices:
        reference = trajectories[reference_index]
        column = np.array(
            [edr(reference, candidate, epsilon) for candidate in trajectories]
        )
        columns[reference_index] = column
    return columns
