"""Near-triangle-inequality pruning for EDR (paper Section 4.2, Theorem 5).

EDR is not a metric — the ε quantization breaks the triangle inequality —
but a weakened form survives:

    ``EDR(Q, S) + EDR(S, R) + |S| >= EDR(Q, R)``

Rearranged, ``EDR(Q, R) - EDR(R, S) - |S|`` is a lower bound on
``EDR(Q, S)`` whenever ``EDR(Q, R)`` (computed earlier in this query) and
``EDR(R, S)`` (precomputed) are known.  The search keeps up to
``max_triangle`` *reference trajectories* — in the paper, simply the
first trajectories whose true distance the query computes — together with
their precomputed distance column to the whole database.

The ``|S|`` slack makes this a weak filter: with equal-length databases
it never prunes (the paper observes the same), which Table 3 reproduces.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .edr import edr_matrix
from .edr_batch import edr_many_bucketed
from .trajectory import Trajectory

__all__ = [
    "near_triangle_lower_bound",
    "NearTrianglePruner",
    "build_reference_columns",
    "compute_reference_column",
]


def near_triangle_lower_bound(
    distance_q_to_reference: float,
    distance_reference_to_candidate: float,
    candidate_length: int,
) -> float:
    """``EDR(Q, R) - EDR(R, S) - |S|``, a lower bound of ``EDR(Q, S)``."""
    return (
        distance_q_to_reference
        - distance_reference_to_candidate
        - candidate_length
    )


class NearTrianglePruner:
    """Query-time state for near-triangle pruning.

    Parameters
    ----------
    reference_columns:
        Map from a database trajectory index (a potential reference) to
        its precomputed EDR distance column — ``column[j] = EDR(R, S_j)``
        for every database trajectory ``S_j``.  Built once per database
        by :class:`repro.core.database.TrajectoryDatabase`.
    max_triangle:
        Maximum number of reference trajectories to retain, mirroring the
        paper's buffer-bounded ``maxTriangle``.
    """

    def __init__(
        self,
        reference_columns: Dict[int, np.ndarray],
        max_triangle: int = 400,
    ) -> None:
        if max_triangle < 0:
            raise ValueError("max_triangle must be non-negative")
        self._reference_columns = reference_columns
        self._max_triangle = max_triangle
        self._active: List[int] = []  # the paper's procArray
        self._query_distances: Dict[int, float] = {}
        # Stacked (reference, candidate) column matrix and query-distance
        # vector, rebuilt lazily whenever a reference is added.
        self._stacked_columns: Optional[np.ndarray] = None
        self._stacked_distances: Optional[np.ndarray] = None

    @property
    def reference_count(self) -> int:
        """Number of reference trajectories currently in use."""
        return len(self._active)

    def record(self, database_index: int, true_distance: float) -> None:
        """Register ``EDR(Q, S_index)`` computed during this query.

        The trajectory becomes a reference when a precomputed column for
        it exists and the reference buffer is not full — the paper's
        "first maxTriangle trajectories that fill up procArray" policy.
        """
        if not np.isfinite(true_distance):
            return
        if len(self._active) >= self._max_triangle:
            return
        if database_index not in self._reference_columns:
            return
        if database_index in self._query_distances:
            return
        self._active.append(database_index)
        self._query_distances[database_index] = true_distance
        self._stacked_columns = None
        self._stacked_distances = None

    def _stacked(self) -> "tuple[np.ndarray, np.ndarray]":
        if self._stacked_columns is None:
            self._stacked_columns = np.stack(
                [self._reference_columns[index] for index in self._active]
            )
            self._stacked_distances = np.array(
                [self._query_distances[index] for index in self._active]
            )
        return self._stacked_distances, self._stacked_columns

    def lower_bound(self, candidate_index: int, candidate_length: int) -> float:
        """Best available lower bound of ``EDR(Q, S_candidate)``.

        The maximum of Theorem 5's bound over all active references
        (``maxPruneDist`` in the paper's pseudo-code); zero when no
        reference applies, since EDR is never negative.
        """
        if not self._active:
            return 0.0
        query_distances, columns = self._stacked()
        best = float(
            np.max(query_distances - columns[:, candidate_index]) - candidate_length
        )
        return best if best > 0.0 else 0.0

    def bulk_lower_bounds(self, candidate_lengths: np.ndarray) -> np.ndarray:
        """Theorem 5's bound for every candidate at once (current state).

        One vectorized pass over the stacked reference columns; entries
        are clipped at zero exactly like :meth:`lower_bound`.
        """
        if not self._active:
            return np.zeros(len(candidate_lengths), dtype=np.float64)
        query_distances, columns = self._stacked()
        bounds = (
            np.max(query_distances[:, None] - columns, axis=0) - candidate_lengths
        )
        return np.maximum(bounds, 0.0)

    def can_prune(
        self, candidate_index: int, candidate_length: int, best_so_far: float
    ) -> bool:
        """True when the candidate provably cannot beat ``best_so_far``."""
        if not np.isfinite(best_so_far):
            return False
        return self.lower_bound(candidate_index, candidate_length) > best_so_far


def compute_reference_column(
    trajectories: Sequence[Trajectory],
    epsilon: float,
    reference_index: int,
    known_columns: Optional[Dict[int, np.ndarray]] = None,
    kernel: Optional[str] = None,
) -> np.ndarray:
    """One ``EDR(R, S_j)`` column, reusing symmetric entries already known.

    ``known_columns`` maps other reference indices to their finished
    columns; EDR is symmetric, so ``EDR(R, R') = known[R'][R]`` and the
    pair is never computed twice.  The diagonal is zero by definition
    (every element ε-matches itself), so ``EDR(R, R)`` is free as well.
    """
    known_columns = known_columns or {}
    reference = trajectories[reference_index]
    column = np.empty(len(trajectories), dtype=np.float64)
    unknown: List[int] = []
    for candidate_index in range(len(trajectories)):
        if candidate_index == reference_index:
            column[candidate_index] = 0.0
        elif candidate_index in known_columns:
            column[candidate_index] = known_columns[candidate_index][reference_index]
        else:
            unknown.append(candidate_index)
    if unknown:
        column[unknown] = edr_many_bucketed(
            reference,
            [trajectories[candidate_index] for candidate_index in unknown],
            epsilon,
            kernel=kernel,
        )
    return column


def build_reference_columns(
    trajectories: Sequence[Trajectory],
    epsilon: float,
    reference_indices: Optional[Sequence[int]] = None,
    max_references: int = 400,
    progress: Optional[Callable[[int, int], None]] = None,
    workers: Optional[int] = None,
    known_columns: Optional[Dict[int, np.ndarray]] = None,
    kernel: Optional[str] = None,
) -> Dict[int, np.ndarray]:
    """Precompute ``EDR(R, S_j)`` columns for the chosen references.

    ``reference_indices`` defaults to the first ``max_references``
    database trajectories, matching the paper's selection policy.  The
    cost is ``len(references) * N`` EDR computations minus the
    reference-vs-reference block, which is computed once and mirrored by
    symmetry instead of twice.  ``progress`` (if given) is called as
    ``progress(completed_columns, total_columns)`` after each column.

    ``known_columns`` maps reference indices whose columns are already
    finished (e.g. cached by the database) to those columns; they are
    reused both as results for any requested index and as symmetric
    entries inside new columns.  ``workers`` (when greater than 1)
    parallelizes the precompute over a process pool by decomposing it
    into the symmetric reference-vs-reference block plus one rectangular
    references-vs-rest matrix, both driven through
    :func:`~repro.core.edr.edr_matrix`'s chunked row workers.
    ``kernel`` names an alternative batch kernel (see
    :mod:`repro.core.kernels`); all kernels produce identical columns.
    """
    if reference_indices is None:
        reference_indices = range(min(max_references, len(trajectories)))
    reference_indices = list(reference_indices)
    total = len(reference_indices)
    known: Dict[int, np.ndarray] = dict(known_columns) if known_columns else {}
    columns: Dict[int, np.ndarray] = {}
    worker_count = 1 if workers is None else max(1, int(workers))
    pending = [index for index in reference_indices if index not in known]
    if worker_count > 1 and len(pending) > 1:
        pending_set = set(pending)
        rest = [
            index
            for index in range(len(trajectories))
            if index not in pending_set and index not in known
        ]
        pending_trajectories = [trajectories[index] for index in pending]
        block = edr_matrix(
            pending_trajectories, epsilon, workers=worker_count, kernel=kernel
        )
        rectangular = (
            edr_matrix(
                pending_trajectories,
                epsilon,
                others=[trajectories[index] for index in rest],
                workers=worker_count,
                kernel=kernel,
            )
            if rest
            else None
        )
        for position, reference_index in enumerate(pending):
            column = np.empty(len(trajectories), dtype=np.float64)
            column[pending] = block[position]
            for known_index, known_column in known.items():
                column[known_index] = known_column[reference_index]
            if rectangular is not None:
                column[rest] = rectangular[position]
            columns[reference_index] = column
        for reference_index in reference_indices:
            if reference_index in known:
                columns[reference_index] = known[reference_index]
        if progress is not None:
            for completed in range(1, total + 1):
                progress(completed, total)
        return columns
    for completed, reference_index in enumerate(reference_indices, start=1):
        if reference_index in known:
            columns[reference_index] = known[reference_index]
        else:
            column = compute_reference_column(
                trajectories, epsilon, reference_index, known_columns=known,
                kernel=kernel,
            )
            columns[reference_index] = column
            known[reference_index] = column
        if progress is not None:
            progress(completed, total)
    return columns
