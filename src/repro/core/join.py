"""Trajectory similarity joins under EDR.

The Q-gram count filter the paper builds on was developed for
*approximate string joins* (Gravano et al. [10]): find all pairs of
strings within edit distance k, almost for free, by filtering on common
Q-grams.  This module closes the loop and provides that operation for
trajectories: all pairs ``(a, b)`` with ``EDR(a, b) <= radius`` between
two databases (or within one), with the same pruner chain the k-NN
engines use — and therefore the same no-false-dismissal guarantee.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .database import TrajectoryDatabase
from .edr import edr
from .search import Pruner

__all__ = ["JoinPair", "JoinStats", "similarity_join"]


@dataclass(frozen=True)
class JoinPair:
    """One join result: indexes into the two databases and the distance."""

    first_index: int
    second_index: int
    distance: float


@dataclass
class JoinStats:
    """Work accounting for a similarity join."""

    pair_candidates: int
    true_distance_computations: int
    elapsed_seconds: float

    @property
    def pruning_power(self) -> float:
        if self.pair_candidates == 0:
            return 0.0
        avoided = self.pair_candidates - self.true_distance_computations
        return avoided / self.pair_candidates


def similarity_join(
    first: TrajectoryDatabase,
    second: Optional[TrajectoryDatabase],
    radius: float,
    pruners: Optional[Sequence[Pruner]] = None,
    early_abandon: bool = False,
) -> "tuple[List[JoinPair], JoinStats]":
    """All cross pairs within EDR ``radius``; ``second=None`` self-joins.

    ``pruners`` must be built against ``second`` (the probed side); the
    left side's trajectories are used as queries one by one.  A self
    join emits each unordered pair once (``first_index < second_index``)
    and skips the trivial diagonal.
    """
    if radius < 0.0:
        raise ValueError("radius must be non-negative")
    probe = second if second is not None else first
    self_join = second is None
    if not self_join and abs(first.epsilon - probe.epsilon) > 1e-12:
        raise ValueError(
            "both databases must share the matching threshold epsilon"
        )
    pruners = list(pruners) if pruners is not None else []

    start = time.perf_counter()
    results: List[JoinPair] = []
    candidates = 0
    computed = 0
    for left_index, query in enumerate(first.trajectories):
        query_pruners = [pruner.for_query(query) for pruner in pruners]
        begin = left_index + 1 if self_join else 0
        for right_index in range(begin, len(probe)):
            candidates += 1
            if any(
                query_pruner.lower_bound(right_index, radius) > radius
                for query_pruner in query_pruners
            ):
                continue
            computed += 1
            bound = radius if early_abandon else None
            distance = edr(
                query, probe.trajectories[right_index], probe.epsilon, bound=bound
            )
            if np.isfinite(distance):
                for query_pruner in query_pruners:
                    query_pruner.record(right_index, distance)
                if distance <= radius:
                    results.append(JoinPair(left_index, right_index, distance))
    stats = JoinStats(
        pair_candidates=candidates,
        true_distance_computations=computed,
        elapsed_seconds=time.perf_counter() - start,
    )
    return results, stats
