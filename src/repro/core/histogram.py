"""Trajectory histograms and the HD lower bound of EDR (paper Section 4.3).

A trajectory histogram partitions space into equal ε-sized bins per axis
and counts the elements falling in each bin — the trajectory analogue of
a string's frequency vector.  The *histogram distance* HD between two
histograms lower-bounds EDR (Theorem 6) and is linear to compute, so it
makes a cheap pruning filter.

Because elements near a shared boundary of two bins can ε-match without
any edit operation, the distance must treat bins that *approximately
match* (the same bin or an adjacent one, Definition 5) as compatible.
This implementation computes HD as ``max(m, n) - M`` where ``M`` is the
maximum one-to-one pairing of elements across approximately-matching
bins (a small bipartite max-flow): every free match of an EDR script is
such a pair, so the bound can never exceed the true distance — including
the chained-match cases (A-B, B-C) where the paper's net-first
CompHisDist pseudo-code overshoots.  On exact-match (string) alphabets
the formula collapses to the classic frequency distance.

Bin-size variants: Corollary 1 allows histograms with bin size δ·ε
(δ >= 2) and per-axis one-dimensional histograms, both still lower
bounds of EDR at threshold ε.  :class:`HistogramSpace` covers all of
these — callers choose the bin size and the projection.
"""

from __future__ import annotations

from collections import Counter, deque
from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

try:  # SciPy is optional; the array store falls back to dense numpy.
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_sparse = None

from .trajectory import Trajectory

__all__ = [
    "HistogramSpace",
    "HistogramArrayStore",
    "histogram_distance",
    "histogram_distance_quick",
    "histogram_match_capacity",
    "histogram_window_bound",
    "TrajectoryHistogram",
]

BinIndex = Tuple[int, ...]
TrajectoryHistogram = Dict[BinIndex, int]


class HistogramSpace:
    """A grid of equal-size bins over d-dimensional space.

    Parameters
    ----------
    origin:
        Per-axis coordinate of the lower edge of bin 0.  Points below the
        origin simply land in negative bin indices, so query trajectories
        outside the dataset's bounding box are handled naturally.
    bin_size:
        Edge length of every bin on every axis.  For the HD lower bound
        to hold against ``EDR_eps``, ``bin_size`` must be ``delta * eps``
        for some ``delta >= 1`` **and** the histogram distance must treat
        adjacency at that same granularity — which this class guarantees
        by construction, since adjacency is defined on its own grid.
    """

    def __init__(self, origin: Sequence[float], bin_size: float) -> None:
        if bin_size <= 0.0:
            raise ValueError("bin size must be positive")
        self.origin = np.asarray(origin, dtype=np.float64).ravel()
        self.bin_size = float(bin_size)

    @classmethod
    def for_trajectories(
        cls,
        trajectories: Iterable[Trajectory],
        bin_size: float,
        axis: Optional[int] = None,
    ) -> "HistogramSpace":
        """Space anchored at the dataset's per-axis minimum (paper §4.3).

        With ``axis`` given, builds a one-dimensional space over that
        coordinate only (the Corollary 1 per-axis variant).
        """
        trajectories = list(trajectories)
        if not trajectories:
            raise ValueError("need at least one trajectory to anchor the space")
        minima = np.min(
            [t.bounds()[0] for t in trajectories if len(t) > 0], axis=0
        )
        if axis is not None:
            minima = minima[axis : axis + 1]
        return cls(minima, bin_size)

    @property
    def ndim(self) -> int:
        return len(self.origin)

    def bin_indices(self, trajectory: Union[Trajectory, np.ndarray]) -> np.ndarray:
        """Integer bin index of every trajectory element, shape ``(n, d)``."""
        points = (
            trajectory.points if isinstance(trajectory, Trajectory) else
            np.atleast_2d(np.asarray(trajectory, dtype=np.float64))
        )
        if points.shape[1] != self.ndim:
            raise ValueError(
                f"space is {self.ndim}-d but points are {points.shape[1]}-d"
            )
        return np.floor((points - self.origin) / self.bin_size).astype(np.int64)

    def histogram(self, trajectory: Union[Trajectory, np.ndarray]) -> TrajectoryHistogram:
        """Sparse histogram: map from occupied bin index to element count."""
        indices = self.bin_indices(trajectory)
        return dict(Counter(map(tuple, indices.tolist())))


def _approximate_neighbors(bin_index: BinIndex) -> Iterable[BinIndex]:
    """The bin itself and all adjacent bins (Definition 5's approximate match)."""
    offsets = product((-1, 0, 1), repeat=len(bin_index))
    for offset in offsets:
        yield tuple(b + o for b, o in zip(bin_index, offset))


def _max_cancellation_1d(
    surplus: Dict[BinIndex, int], deficit: Dict[BinIndex, int]
) -> int:
    """Exact maximum matching for one-dimensional (path-adjacency) bins.

    On a line, a unit in bin b can only pair with bins b-1, b, b+1, so a
    left-to-right greedy that always serves the expiring carry first is
    optimal (a standard exchange argument) — no flow solver needed.
    The property-based tests cross-check this against the Dinic path.
    """
    bins = sorted(set(surplus) | set(deficit))
    carry_surplus = 0  # unmatched surplus from the previous bin
    carry_deficit = 0  # unmatched deficit from the previous bin
    previous = None
    total = 0
    for bin_index in bins:
        position = bin_index[0]
        if previous is not None and position - previous > 1:
            carry_surplus = 0
            carry_deficit = 0
        available_surplus = surplus.get(bin_index, 0)
        available_deficit = deficit.get(bin_index, 0)
        # Expiring carries first: they cannot reach the next bin.
        matched = min(carry_surplus, available_deficit)
        total += matched
        carry_surplus -= matched
        available_deficit -= matched
        matched = min(carry_deficit, available_surplus)
        total += matched
        carry_deficit -= matched
        available_surplus -= matched
        # Same-bin matching never hurts (swappable in any optimum).
        matched = min(available_surplus, available_deficit)
        total += matched
        carry_surplus = available_surplus - matched
        carry_deficit = available_deficit - matched
        previous = position
    return total


def _max_cancellation(
    surplus: Dict[BinIndex, int], deficit: Dict[BinIndex, int]
) -> int:
    """Maximum total units cancellable between approximately-matching bins.

    A bipartite max-flow: source -> each surplus bin (capacity = surplus),
    each deficit bin -> sink (capacity = deficit), and an uncapped edge
    between every surplus bin and each deficit bin it approximately
    matches.  One-dimensional bins take an O(bins) exact greedy instead;
    higher dimensions run Dinic's algorithm on graphs of at most a few
    hundred nodes.
    """
    if not surplus or not deficit:
        return 0
    if len(next(iter(surplus))) == 1:
        return _max_cancellation_1d(surplus, deficit)
    if not any(
        neighbor in deficit
        for bin_index in surplus
        for neighbor in _approximate_neighbors(bin_index)
    ):
        return 0
    source = 0
    sink = 1
    node_of: Dict[Tuple[str, BinIndex], int] = {}
    for bin_index in surplus:
        node_of[("s", bin_index)] = len(node_of) + 2
    for bin_index in deficit:
        node_of[("d", bin_index)] = len(node_of) + 2
    node_count = len(node_of) + 2

    # Adjacency as edge lists: to[], cap[], head per node (Dinic).
    graph: List[List[int]] = [[] for _ in range(node_count)]
    to: List[int] = []
    cap: List[int] = []

    def add_edge(u: int, v: int, capacity: int) -> None:
        graph[u].append(len(to))
        to.append(v)
        cap.append(capacity)
        graph[v].append(len(to))
        to.append(u)
        cap.append(0)

    infinite = sum(surplus.values()) + 1
    for bin_index, amount in surplus.items():
        add_edge(source, node_of[("s", bin_index)], amount)
    for bin_index, amount in deficit.items():
        add_edge(node_of[("d", bin_index)], sink, amount)
    for bin_index in surplus:
        for neighbor in _approximate_neighbors(bin_index):
            if neighbor in deficit:
                add_edge(node_of[("s", bin_index)], node_of[("d", neighbor)], infinite)

    flow = 0
    while True:
        # BFS level graph.
        level = [-1] * node_count
        level[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for edge in graph[u]:
                v = to[edge]
                if cap[edge] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        if level[sink] < 0:
            return flow
        # DFS blocking flow with an iteration pointer per node.
        pointer = [0] * node_count

        def augment(u: int, pushed: int) -> int:
            if u == sink:
                return pushed
            while pointer[u] < len(graph[u]):
                edge = graph[u][pointer[u]]
                v = to[edge]
                if cap[edge] > 0 and level[v] == level[u] + 1:
                    found = augment(v, min(pushed, cap[edge]))
                    if found > 0:
                        cap[edge] -= found
                        cap[edge ^ 1] += found
                        return found
                pointer[u] += 1
            return 0

        while True:
            pushed = augment(source, infinite)
            if pushed == 0:
                break
            flow += pushed


def histogram_distance(
    first: TrajectoryHistogram, second: TrajectoryHistogram
) -> int:
    """HD between two trajectory histograms: a sound lower bound of EDR.

    Computed as ``max(m, n) - M`` where ``M`` is the maximum number of
    one-to-one element pairings between the two histograms along
    approximately-matching bins (Definition 5), found by max-flow.
    Soundness (Theorem 6): the free matches of an optimal EDR script are
    element pairs within ε, which always lie in approximately-matching
    bins, so they form one feasible pairing — hence ``p <= M`` and
    ``EDR >= max(m, n) - p >= max(m, n) - M``.

    On strings (exact-match adjacency) ``M`` collapses to the per-symbol
    minimum counts and this formula equals the classic frequency
    distance ``max(surplus, deficit)`` of [18, 2], so HD is the exact
    ε-generalization of FD.  Note that the paper's Figure 5 pseudo-code
    nets the two histograms *first* and then cancels adjacent bins; that
    version over-estimates when matches chain across bins (R's element
    in bin A matching S's in bin B while R's in B matches S's in C) and
    can exceed the true EDR — the flow form computed here never does,
    and the property-based test suite verifies it.
    """
    total_first = sum(first.values())
    total_second = sum(second.values())
    if not first or not second:
        return max(total_first, total_second)
    matchable = _max_cancellation(dict(first), dict(second))
    return max(total_first, total_second) - matchable


def histogram_match_capacity(
    first: TrajectoryHistogram, second: TrajectoryHistogram
) -> int:
    """Maximum one-to-one ε-matchable element pairs between two trajectories.

    Every ε-matching element pair lies in the same or adjacent bins, so
    any in-order common subsequence — in particular the LCSS alignment —
    induces a feasible flow between the two *full* histograms along
    approximately-matching bins.  The maximum such flow therefore upper
    bounds ``LCSS(R, S)``, which is how the paper's pruning framework
    transfers to LCSS (Section 4, "can also be applied to LCSS").
    """
    return _max_cancellation(dict(first), dict(second))


def comphisdist_paper(
    first: TrajectoryHistogram, second: TrajectoryHistogram
) -> int:
    """Literal transcription of the paper's Figure 5 (CompHisDist).

    Nets the histograms bin-by-bin first, then walks the bins and
    cancels opposite-sign amounts between approximately-matching bins,
    finally returning ``max(positive, negative)``.

    Kept for comparison and documentation only: when matches chain
    across bins (R's element in bin A matches S's in bin B while R's in
    B matches S's in C), the netting step hides the chain and this
    quantity can exceed the true EDR — see
    ``tests/test_histogram.py::TestPaperCompHisDist`` for the concrete
    counterexample.  Use :func:`histogram_distance` for retrieval.
    """
    difference: Dict[BinIndex, int] = {}
    for bin_index in set(first) | set(second):
        value = first.get(bin_index, 0) - second.get(bin_index, 0)
        if value != 0:
            difference[bin_index] = value
    for bin_index in sorted(difference):
        if difference.get(bin_index, 0) == 0:
            continue
        for neighbor in _approximate_neighbors(bin_index):
            if neighbor == bin_index or difference.get(neighbor, 0) == 0:
                continue
            current = difference.get(bin_index, 0)
            if current == 0:
                break
            other = difference[neighbor]
            if (current > 0) != (other > 0):
                cancelled = min(abs(current), abs(other))
                difference[bin_index] = current - cancelled * (1 if current > 0 else -1)
                difference[neighbor] = other - cancelled * (1 if other > 0 else -1)
    positive = sum(v for v in difference.values() if v > 0)
    negative = sum(-v for v in difference.values() if v < 0)
    return max(positive, negative)


def histogram_distance_quick(
    first: TrajectoryHistogram, second: TrajectoryHistogram
) -> int:
    """A cheaper, weaker lower bound of EDR than :func:`histogram_distance`.

    Bounds the matchable mass M from above per side —
    ``M <= sum_u min(H_R(u), neighbourhood mass of H_S around u)`` and
    symmetrically — without solving the flow, giving
    ``max(m, n) - min(upper_R, upper_S) <= HD <= EDR`` in one dictionary
    sweep.  The search engines consult this first and only pay for the
    exact flow when the quick bound fails to prune.
    """
    total_first = sum(first.values())
    total_second = sum(second.values())
    if not first or not second:
        return max(total_first, total_second)

    def matchable_upper(source: TrajectoryHistogram, target: TrajectoryHistogram) -> int:
        upper = 0
        for bin_index, amount in source.items():
            neighborhood = 0
            for neighbor in _approximate_neighbors(bin_index):
                neighborhood += target.get(neighbor, 0)
                if neighborhood >= amount:
                    neighborhood = amount
                    break
            upper += neighborhood
        return upper

    upper = min(matchable_upper(first, second), matchable_upper(second, first))
    return max(total_first, total_second) - upper


def histogram_window_bound(
    query_histogram: TrajectoryHistogram,
    candidate_histogram: TrajectoryHistogram,
) -> int:
    """A lower bound of EDR valid for *every* window of the candidate.

    Only the query-side matchable-mass cap of
    :func:`histogram_distance_quick` survives restriction to windows: a
    window's histogram is elementwise dominated by its trajectory's, so
    the candidate mass reachable from each query bin can only shrink,
    giving for every window ``w``

        ``EDR(Q, w) >= HD(Q, w) >= |Q| - matchable_upper(Q -> T)``.

    The ``max(m, n)`` term and the candidate-side cap both depend on the
    window's own size and content, so they are dropped.  Equals the
    corresponding entry of
    :meth:`HistogramArrayStore.bulk_window_bounds` bit for bit.
    """
    total_query = sum(query_histogram.values())
    if not query_histogram:
        return 0
    upper = 0
    for bin_index, amount in query_histogram.items():
        neighborhood = 0
        for neighbor in _approximate_neighbors(bin_index):
            neighborhood += candidate_histogram.get(neighbor, 0)
            if neighborhood >= amount:
                neighborhood = amount
                break
        upper += neighborhood
    return max(0, total_query - upper)


# ----------------------------------------------------------------------
# Array-backed histogram store (bulk filter kernels)
# ----------------------------------------------------------------------
# Above this many grid cells the dense (N, bins) count matrix switches to
# a CSR representation (when scipy is present) to keep memory bounded.
_DENSE_CELL_LIMIT = 8_000_000


class HistogramArrayStore:
    """All histograms of one database variant as a single count matrix.

    The per-trajectory ``dict`` histograms are the build- and exact-bound
    representation; this store re-packs them into one ``(N, bins)`` count
    matrix over the database's occupied bin range (padded by one bin per
    axis so adjacency never falls off the grid), which makes the *quick*
    HD bound of :func:`histogram_distance_quick` computable for every
    database trajectory in a handful of vectorized operations instead of
    N dictionary sweeps.  The matrix is dense numpy for small grids and
    scipy CSR for large ones (dense is kept when scipy is unavailable).

    The bulk bound is integer-exact: for every candidate ``i`` the value
    equals ``histogram_distance_quick(query_histogram, histograms[i])``
    bit for bit, which the property-based test suite asserts.
    """

    def __init__(
        self, histograms: Sequence[TrajectoryHistogram], ndim: int
    ) -> None:
        self.ndim = int(ndim)
        self.count = len(histograms)
        occupied = [key for histogram in histograms for key in histogram]
        if not occupied:
            # Degenerate (all-empty) histograms: keep a 1-cell grid.
            self._lo = np.zeros(self.ndim, dtype=np.int64)
            self._shape = np.ones(self.ndim, dtype=np.int64)
        else:
            keys = np.asarray(occupied, dtype=np.int64).reshape(len(occupied), -1)
            self._lo = keys.min(axis=0) - 1
            self._shape = keys.max(axis=0) + 1 - self._lo + 1
        self.cells = int(np.prod(self._shape))
        self.totals = np.array(
            [sum(histogram.values()) for histogram in histograms], dtype=np.int64
        )

        row_ids: List[np.ndarray] = []
        columns: List[np.ndarray] = []
        values: List[np.ndarray] = []
        for row, histogram in enumerate(histograms):
            if not histogram:
                continue
            keys = np.asarray(list(histogram), dtype=np.int64).reshape(
                len(histogram), -1
            )
            columns.append(self._ravel(keys))
            values.append(np.fromiter(histogram.values(), dtype=np.int64))
            row_ids.append(np.full(len(histogram), row, dtype=np.int64))
        rows = np.concatenate(row_ids) if row_ids else np.empty(0, dtype=np.int64)
        cols = np.concatenate(columns) if columns else np.empty(0, dtype=np.int64)
        vals = np.concatenate(values) if values else np.empty(0, dtype=np.int64)

        use_sparse = (
            _scipy_sparse is not None
            and self.count * self.cells > _DENSE_CELL_LIMIT
        )
        if use_sparse:
            self._counts = _scipy_sparse.csr_matrix(
                (vals, (rows, cols)), shape=(self.count, self.cells), dtype=np.int64
            )
            self._sparse = True
        else:
            counts = np.zeros((self.count, self.cells), dtype=np.int64)
            np.add.at(counts, (rows, cols), vals)
            self._counts = counts
            self._sparse = False

    @classmethod
    def from_state(
        cls,
        ndim: int,
        lo: np.ndarray,
        shape: np.ndarray,
        totals: np.ndarray,
        counts,
        sparse: bool = False,
    ) -> "HistogramArrayStore":
        """Rebuild a store from its raw arrays, skipping the binning pass.

        The sharded engine packs a store's row slice (``totals`` and
        ``counts``) into shared memory together with the *parent grid*
        (``lo``/``shape``): shard stores must keep the global grid, not
        re-derive one from their own rows, or the neighborhood columns —
        and therefore the quick bounds — would shift at shard borders.
        ``counts`` is the dense ``(count, cells)`` matrix, or the CSR
        triple ``(data, indices, indptr)`` when ``sparse`` is true.
        """
        store = cls.__new__(cls)
        store.ndim = int(ndim)
        store._lo = np.asarray(lo, dtype=np.int64)
        store._shape = np.asarray(shape, dtype=np.int64)
        store.cells = int(np.prod(store._shape))
        store.totals = np.asarray(totals, dtype=np.int64)
        store.count = len(store.totals)
        if sparse:
            if _scipy_sparse is None:  # pragma: no cover - needs scipy absent
                raise RuntimeError("CSR histogram state needs scipy")
            data, indices, indptr = counts
            store._counts = _scipy_sparse.csr_matrix(
                (data, indices, indptr), shape=(store.count, store.cells)
            )
            store._sparse = True
        else:
            store._counts = counts
            store._sparse = False
        return store

    def _ravel(self, keys: np.ndarray) -> np.ndarray:
        """Flat grid column of every (in-grid) d-dimensional bin index."""
        return np.ravel_multi_index(tuple((keys - self._lo).T), tuple(self._shape))

    def _in_grid(self, keys: np.ndarray) -> np.ndarray:
        relative = keys - self._lo
        return np.all((relative >= 0) & (relative < self._shape), axis=1)

    def bulk_quick_bounds(self, query_histogram: TrajectoryHistogram) -> np.ndarray:
        """``histogram_distance_quick(query, ·)`` against every database row.

        Vectorized transcription of the per-side matchable-mass caps: with
        ``A`` the query amounts and ``NS[i, u]`` candidate ``i``'s mass in
        the 3^d-neighborhood of query bin ``u``,

            ``upper_query[i]     = sum_u min(A[u], NS[i, u])``
            ``upper_candidate[i] = sum_v min(counts[i, v], QN[v])``

        where ``QN`` is the query's neighborhood mass on the grid; the
        bound is ``max(m_query, m_i) - min(upper_query, upper_candidate)``.
        """
        query_total = int(sum(query_histogram.values()))
        if not query_histogram:
            return np.maximum(query_total, self.totals).astype(np.int64)
        query_keys = np.asarray(list(query_histogram), dtype=np.int64).reshape(
            len(query_histogram), -1
        )
        amounts = np.fromiter(query_histogram.values(), dtype=np.int64)
        offsets = np.array(
            list(product((-1, 0, 1), repeat=self.ndim)), dtype=np.int64
        )

        # Neighborhoods of the query bins, as (query bin, grid column) pairs.
        neighbor_bins = (query_keys[:, None, :] + offsets[None, :, :]).reshape(
            -1, self.ndim
        )
        bin_of_pair = np.repeat(np.arange(len(query_keys)), len(offsets))
        in_grid = self._in_grid(neighbor_bins)
        pair_bins = bin_of_pair[in_grid]
        pair_columns = self._ravel(neighbor_bins[in_grid])

        # upper_query: candidate mass around each query bin, capped by A.
        unique_columns, column_slot = np.unique(pair_columns, return_inverse=True)
        indicator = np.zeros((len(unique_columns), len(query_keys)), dtype=np.int64)
        indicator[column_slot, pair_bins] = 1
        candidate_neighborhood = self._counts[:, unique_columns] @ indicator
        candidate_neighborhood = np.asarray(candidate_neighborhood)
        upper_query = np.minimum(amounts[None, :], candidate_neighborhood).sum(
            axis=1
        )

        # upper_candidate: query neighborhood mass at every grid cell the
        # candidates occupy, capped by the candidate counts.
        query_neighborhood = np.zeros(self.cells, dtype=np.int64)
        np.add.at(query_neighborhood, pair_columns, amounts[pair_bins])
        if self._sparse:
            counts = self._counts
            capped = np.minimum(counts.data, query_neighborhood[counts.indices])
            upper_candidate = np.add.reduceat(
                np.append(capped, 0), counts.indptr[:-1]
            )
            upper_candidate[np.diff(counts.indptr) == 0] = 0
        else:
            upper_candidate = np.minimum(
                self._counts, query_neighborhood[None, :]
            ).sum(axis=1)

        upper = np.minimum(upper_query, upper_candidate)
        return np.maximum(query_total, self.totals) - upper

    def bulk_window_bounds(
        self, query_histogram: TrajectoryHistogram
    ) -> np.ndarray:
        """:func:`histogram_window_bound` against every database row.

        Only the query-side cap of :meth:`bulk_quick_bounds` is
        window-sound (see :func:`histogram_window_bound`), so this is
        the same neighborhood gather with the candidate-side cap and the
        ``max(m, n)`` term dropped:
        ``max(0, m_query - upper_query[i])`` per candidate.  Query bins
        outside the padded grid contribute zero matchable mass on both
        paths, so the bulk values equal the scalar ones bit for bit.
        """
        query_total = int(sum(query_histogram.values()))
        if not query_histogram:
            return np.zeros(self.count, dtype=np.int64)
        query_keys = np.asarray(list(query_histogram), dtype=np.int64).reshape(
            len(query_histogram), -1
        )
        amounts = np.fromiter(query_histogram.values(), dtype=np.int64)
        offsets = np.array(
            list(product((-1, 0, 1), repeat=self.ndim)), dtype=np.int64
        )
        neighbor_bins = (query_keys[:, None, :] + offsets[None, :, :]).reshape(
            -1, self.ndim
        )
        bin_of_pair = np.repeat(np.arange(len(query_keys)), len(offsets))
        in_grid = self._in_grid(neighbor_bins)
        pair_bins = bin_of_pair[in_grid]
        pair_columns = self._ravel(neighbor_bins[in_grid])
        if pair_columns.size == 0:
            # Every query bin sits outside the database grid: nothing in
            # any trajectory (or window) can match.
            return np.full(self.count, query_total, dtype=np.int64)
        unique_columns, column_slot = np.unique(pair_columns, return_inverse=True)
        indicator = np.zeros((len(unique_columns), len(query_keys)), dtype=np.int64)
        indicator[column_slot, pair_bins] = 1
        candidate_neighborhood = self._counts[:, unique_columns] @ indicator
        candidate_neighborhood = np.asarray(candidate_neighborhood)
        upper_query = np.minimum(amounts[None, :], candidate_neighborhood).sum(
            axis=1
        )
        return np.maximum(0, query_total - upper_query)
