"""Exact k-NN search over EDR with the paper's pruning methods.

All engines return the same answers as a sequential scan (the
no-false-dismissal guarantee of Section 4); they differ in how many true
EDR computations they avoid and therefore in speed.  Each engine reports
a :class:`SearchStats` with the two quantities the paper's experiments
measure: *pruning power* (fraction of database trajectories whose true
distance was never computed) and wall-clock time (from which the bench
harness derives *speedup ratio* against the sequential scan).

The pruning methods share one interface: a :class:`Pruner` bound to a
database produces, per query, a :class:`QueryPruner` exposing
``lower_bound(candidate_index)``; a candidate is skipped when its lower
bound exceeds the current k-th best distance.  Three pruner families are
provided (histograms, mean-value Q-grams, near triangle inequality) plus
two specialized engines: :func:`knn_sorted_scan` (the paper's HSR —
visit candidates in ascending lower-bound order and stop at the first
bound that cannot beat the k-th distance) and :func:`knn_qgram_index`
(Figure 3 — probe a Q-gram index, then visit candidates in descending
common-count order).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..index.mergejoin import (
    count_common_sorted_1d,
    count_common_sorted_2d,
    sort_means_1d,
    sort_means_2d,
)
from .database import TrajectoryDatabase
from .edr import edr
from .histogram import histogram_distance, histogram_distance_quick
from .neartriangle import NearTrianglePruner as _NearTriangleState
from .qgram import mean_value_qgrams
from .trajectory import Trajectory

__all__ = [
    "Neighbor",
    "SearchStats",
    "SearchResult",
    "Pruner",
    "QueryPruner",
    "HistogramPruner",
    "QgramMergeJoinPruner",
    "QgramIndexPruner",
    "NearTrianglePruning",
    "knn_scan",
    "knn_search",
    "knn_sorted_scan",
    "knn_sorted_search",
    "knn_qgram_index",
]


@dataclass(frozen=True)
class Neighbor:
    """One k-NN answer: database index and its true EDR distance."""

    index: int
    distance: float


@dataclass
class SearchStats:
    """Counters for one k-NN query, in the paper's Section 5 vocabulary."""

    database_size: int
    true_distance_computations: int = 0
    pruned_by: Dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def pruning_power(self) -> float:
        """Fraction of trajectories whose true EDR was never computed."""
        if self.database_size == 0:
            return 0.0
        avoided = self.database_size - self.true_distance_computations
        return avoided / self.database_size

    def credit(self, pruner_name: str) -> None:
        self.pruned_by[pruner_name] = self.pruned_by.get(pruner_name, 0) + 1


SearchResult = Tuple[List[Neighbor], SearchStats]


class _ResultList:
    """The paper's ``result`` array: k best (index, distance), sorted."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self._items: List[Neighbor] = []

    @property
    def best_so_far(self) -> float:
        """The current k-th distance — infinite until k answers exist."""
        if len(self._items) < self.k:
            return float("inf")
        return self._items[-1].distance

    def offer(self, index: int, distance: float) -> None:
        if not np.isfinite(distance):
            return
        if len(self._items) >= self.k and distance >= self.best_so_far:
            return
        position = 0
        while (
            position < len(self._items)
            and self._items[position].distance <= distance
        ):
            position += 1
        self._items.insert(position, Neighbor(index, distance))
        del self._items[self.k :]

    def neighbors(self) -> List[Neighbor]:
        return list(self._items)


# ----------------------------------------------------------------------
# Pruner interface and implementations
# ----------------------------------------------------------------------
class QueryPruner:
    """Per-query pruning state; see :class:`Pruner`."""

    name: str = "base"

    def lower_bound(
        self, candidate_index: int, threshold: float = float("inf")
    ) -> float:
        """A proven lower bound of ``EDR(query, candidate)``.

        ``threshold`` is the value the caller will compare against (the
        current k-th best distance, or a range radius).  Pruners with a
        cheap-but-weak bound may return it as soon as it already exceeds
        the threshold, skipping their expensive exact bound; any
        returned value must still be a sound lower bound.
        """
        raise NotImplementedError

    def record(self, candidate_index: int, true_distance: float) -> None:
        """Hook called after a true distance is computed (NTI uses it)."""

    def quick_lower_bound(self, candidate_index: int) -> float:
        """A cheaper (possibly weaker) sound lower bound.

        Sorted-access engines use it to order candidates without paying
        the exact bound for the whole database; the default simply
        defers to :meth:`lower_bound`.
        """
        return self.lower_bound(candidate_index)


class Pruner:
    """A pruning method bound to a database.

    ``for_query`` performs the per-query precomputation (query histogram,
    query Q-gram means, index probes...) and returns a
    :class:`QueryPruner` whose ``lower_bound`` is consulted per candidate.
    """

    name: str = "base"

    def for_query(self, query: Trajectory) -> QueryPruner:
        raise NotImplementedError


class _HistogramQuery(QueryPruner):
    def __init__(
        self,
        name: str,
        query_histograms: List[dict],
        database_histograms: List[List[dict]],
    ) -> None:
        self.name = name
        self._query = query_histograms
        self._database = database_histograms

    def lower_bound(
        self, candidate_index: int, threshold: float = float("inf")
    ) -> float:
        # Stage 1: the cheap neighbourhood bound — when it already beats
        # the threshold the exact flow computation is unnecessary.
        if np.isfinite(threshold):
            quick = max(
                histogram_distance_quick(
                    query_histogram, per_axis[candidate_index]
                )
                for query_histogram, per_axis in zip(self._query, self._database)
            )
            if quick > threshold:
                return float(quick)
        # Stage 2: the exact HD.  With several projections (the 1-D
        # per-axis variant) every HD is a lower bound, so the max is the
        # tightest combination.
        return float(
            max(
                histogram_distance(query_histogram, per_axis[candidate_index])
                for query_histogram, per_axis in zip(self._query, self._database)
            )
        )

    def quick_lower_bound(self, candidate_index: int) -> float:
        return float(
            max(
                histogram_distance_quick(
                    query_histogram, per_axis[candidate_index]
                )
                for query_histogram, per_axis in zip(self._query, self._database)
            )
        )


class HistogramPruner(Pruner):
    """Trajectory-histogram pruning (Section 4.3).

    ``delta`` scales the bin size to δ·ε (the paper's 2HE/2H2E/... series);
    ``per_axis=True`` switches to the 1-D per-axis histograms of
    Corollary 1 (the paper's 1HE), taking the max of the per-axis HDs.
    """

    def __init__(
        self,
        database: TrajectoryDatabase,
        delta: float = 1.0,
        per_axis: bool = False,
    ) -> None:
        self._database = database
        self._delta = float(delta)
        self._per_axis = per_axis
        if per_axis:
            self.name = f"histogram-1d(delta={delta:g})"
            self._variants = [
                database.histograms(delta=delta, axis=axis)
                for axis in range(database.ndim)
            ]
        else:
            self.name = f"histogram-2d(delta={delta:g})"
            self._variants = [database.histograms(delta=delta)]

    def for_query(self, query: Trajectory) -> QueryPruner:
        query_histograms = []
        database_histograms = []
        for axis, (space, built) in enumerate(self._variants):
            projected = query.projection(axis) if self._per_axis else query
            query_histograms.append(space.histogram(projected))
            database_histograms.append(built)
        return _HistogramQuery(self.name, query_histograms, database_histograms)


class _QgramMergeJoinQuery(QueryPruner):
    def __init__(
        self,
        name: str,
        query_sorted: np.ndarray,
        candidates_sorted: List[np.ndarray],
        query_length: int,
        lengths: np.ndarray,
        q: int,
        epsilon: float,
        two_dimensional: bool,
    ) -> None:
        self.name = name
        self._query_sorted = query_sorted
        self._candidates = candidates_sorted
        self._query_length = query_length
        self._lengths = lengths
        self._q = q
        self._epsilon = epsilon
        self._two_dimensional = two_dimensional

    def lower_bound(
        self, candidate_index: int, threshold: float = float("inf")
    ) -> float:
        candidate = self._candidates[candidate_index]
        if self._two_dimensional:
            common = count_common_sorted_2d(
                self._query_sorted, candidate, self._epsilon
            )
        else:
            common = count_common_sorted_1d(
                self._query_sorted, candidate, self._epsilon
            )
        longest = max(self._query_length, int(self._lengths[candidate_index]))
        # Theorem 1 rearranged: EDR >= (max(m, n) - q + 1 - common) / q.
        return max(0.0, (longest - self._q + 1 - common) / self._q)


class QgramMergeJoinPruner(Pruner):
    """Mean-value Q-gram pruning via merge join — PS2 (2-D) / PS1 (1-D)."""

    def __init__(
        self,
        database: TrajectoryDatabase,
        q: int = 1,
        two_dimensional: bool = True,
        axis: int = 0,
    ) -> None:
        self._database = database
        self._q = q
        self._two_dimensional = two_dimensional
        self._axis = axis
        if two_dimensional:
            self.name = f"qgram-ps2(q={q})"
            self._candidates = database.sorted_qgram_means(q)
        else:
            self.name = f"qgram-ps1(q={q})"
            self._candidates = database.sorted_qgram_means_1d(q, axis)

    def for_query(self, query: Trajectory) -> QueryPruner:
        if self._two_dimensional:
            query_sorted = sort_means_2d(mean_value_qgrams(query, self._q))
        else:
            query_sorted = sort_means_1d(
                mean_value_qgrams(query.projection(self._axis), self._q)
            )
        return _QgramMergeJoinQuery(
            self.name,
            query_sorted,
            self._candidates,
            len(query),
            self._database.lengths,
            self._q,
            self._database.epsilon,
            self._two_dimensional,
        )


class _QgramIndexQuery(QueryPruner):
    def __init__(
        self,
        name: str,
        counters: np.ndarray,
        query_length: int,
        lengths: np.ndarray,
        q: int,
    ) -> None:
        self.name = name
        self.counters = counters
        self._query_length = query_length
        self._lengths = lengths
        self._q = q

    def lower_bound(
        self, candidate_index: int, threshold: float = float("inf")
    ) -> float:
        common = int(self.counters[candidate_index])
        longest = max(self._query_length, int(self._lengths[candidate_index]))
        return max(0.0, (longest - self._q + 1 - common) / self._q)


class QgramIndexPruner(Pruner):
    """Mean-value Q-gram pruning via index probes — PR (R-tree) / PB (B+-tree).

    ``for_query`` probes the index once per query Q-gram and accumulates
    per-trajectory common counters (each query Q-gram counts one match
    per trajectory at most), after which the lower bound is O(1) per
    candidate.
    """

    def __init__(
        self,
        database: TrajectoryDatabase,
        q: int = 1,
        structure: str = "rtree",
        axis: int = 0,
    ) -> None:
        if structure not in ("rtree", "bptree"):
            raise ValueError("structure must be 'rtree' or 'bptree'")
        self._database = database
        self._q = q
        self._structure = structure
        self._axis = axis
        self.name = f"qgram-{'pr' if structure == 'rtree' else 'pb'}(q={q})"
        if structure == "rtree":
            self._index = database.qgram_rtree(q)
        else:
            self._index = database.qgram_bptree(q, axis)

    def for_query(self, query: Trajectory) -> QueryPruner:
        counters = np.zeros(len(self._database), dtype=np.int64)
        epsilon = self._database.epsilon
        if self._structure == "rtree":
            means = mean_value_qgrams(query, self._q)
            probe = lambda mean: self._index.match_search(mean, epsilon)
        else:
            means = mean_value_qgrams(query.projection(self._axis), self._q).ravel()
            probe = lambda mean: self._index.match_search(float(mean), epsilon)
        for mean in means:
            matched = set(probe(mean))
            for trajectory_index in matched:
                counters[trajectory_index] += 1
        return _QgramIndexQuery(
            self.name, counters, len(query), self._database.lengths, self._q
        )


class _NearTriangleQuery(QueryPruner):
    def __init__(self, name: str, state: _NearTriangleState, lengths: np.ndarray):
        self.name = name
        self._state = state
        self._lengths = lengths

    def lower_bound(
        self, candidate_index: int, threshold: float = float("inf")
    ) -> float:
        return self._state.lower_bound(
            candidate_index, int(self._lengths[candidate_index])
        )

    def record(self, candidate_index: int, true_distance: float) -> None:
        self._state.record(candidate_index, true_distance)


class NearTrianglePruning(Pruner):
    """Near-triangle-inequality pruning (Section 4.2, Theorem 5)."""

    def __init__(
        self,
        database: TrajectoryDatabase,
        max_triangle: int = 400,
        policy: str = "first",
    ) -> None:
        self._database = database
        self._max_triangle = max_triangle
        self.name = f"near-triangle(max={max_triangle}, {policy})"
        self._columns = database.reference_columns(max_triangle, policy=policy)

    def for_query(self, query: Trajectory) -> QueryPruner:
        state = _NearTriangleState(self._columns, self._max_triangle)
        return _NearTriangleQuery(self.name, state, self._database.lengths)


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------
def _true_distance(
    database: TrajectoryDatabase,
    query: Trajectory,
    candidate_index: int,
    stats: SearchStats,
    bound: Optional[float] = None,
) -> float:
    stats.true_distance_computations += 1
    return edr(
        query, database.trajectories[candidate_index], database.epsilon, bound=bound
    )


def knn_scan(
    database: TrajectoryDatabase, query: Trajectory, k: int
) -> SearchResult:
    """Sequential scan: the pruning-free baseline every speedup is measured against."""
    start = time.perf_counter()
    result = _ResultList(k)
    stats = SearchStats(database_size=len(database))
    for candidate_index in range(len(database)):
        distance = _true_distance(database, query, candidate_index, stats)
        result.offer(candidate_index, distance)
    stats.elapsed_seconds = time.perf_counter() - start
    return result.neighbors(), stats


def knn_search(
    database: TrajectoryDatabase,
    query: Trajectory,
    k: int,
    pruners: Sequence[Pruner],
    early_abandon: bool = False,
) -> SearchResult:
    """Sequential k-NN with a chain of pruners (Figure 6's skeleton).

    Candidates are visited in database order.  The first k candidates
    initialize the result with true distances; afterwards each pruner is
    consulted in the given order and the first one whose lower bound
    exceeds the current k-th distance prunes the candidate (and is
    credited in the stats).  With ``early_abandon=True`` the EDR dynamic
    program itself stops as soon as the k-th distance is unreachable;
    abandoned candidates still count as true-distance computations.
    """
    start = time.perf_counter()
    result = _ResultList(k)
    stats = SearchStats(database_size=len(database))
    query_pruners = [pruner.for_query(query) for pruner in pruners]

    for candidate_index in range(len(database)):
        best = result.best_so_far
        pruned = False
        if np.isfinite(best):
            for query_pruner in query_pruners:
                if query_pruner.lower_bound(candidate_index, best) > best:
                    stats.credit(query_pruner.name)
                    pruned = True
                    break
        if pruned:
            continue
        bound = best if early_abandon and np.isfinite(best) else None
        distance = _true_distance(database, query, candidate_index, stats, bound)
        if np.isfinite(distance):
            for query_pruner in query_pruners:
                query_pruner.record(candidate_index, distance)
        result.offer(candidate_index, distance)
    stats.elapsed_seconds = time.perf_counter() - start
    return result.neighbors(), stats


def knn_sorted_scan(
    database: TrajectoryDatabase,
    query: Trajectory,
    k: int,
    pruner: Pruner,
    early_abandon: bool = False,
) -> SearchResult:
    """Sorted scan (the paper's HSR): visit in ascending lower-bound order.

    All lower bounds are computed up front and sorted; the scan stops at
    the first candidate whose bound exceeds the current k-th distance,
    because every later bound is at least as large.
    """
    start = time.perf_counter()
    result = _ResultList(k)
    stats = SearchStats(database_size=len(database))
    query_pruner = pruner.for_query(query)
    bounds = np.array(
        [query_pruner.lower_bound(index) for index in range(len(database))]
    )
    order = np.argsort(bounds, kind="stable")
    for rank, candidate_index in enumerate(map(int, order)):
        best = result.best_so_far
        if np.isfinite(best) and bounds[candidate_index] > best:
            remaining = len(order) - rank
            stats.pruned_by[query_pruner.name] = (
                stats.pruned_by.get(query_pruner.name, 0) + remaining
            )
            break
        bound = best if early_abandon and np.isfinite(best) else None
        distance = _true_distance(database, query, candidate_index, stats, bound)
        if np.isfinite(distance):
            query_pruner.record(candidate_index, distance)
        result.offer(candidate_index, distance)
    stats.elapsed_seconds = time.perf_counter() - start
    return result.neighbors(), stats


def knn_qgram_index(
    database: TrajectoryDatabase,
    query: Trajectory,
    k: int,
    q: int = 1,
    structure: str = "rtree",
    axis: int = 0,
) -> SearchResult:
    """The Qgramk-NN-index algorithm of Figure 3.

    Probe the Q-gram index to build per-trajectory common counters, seed
    the result with the k highest-counter trajectories, then visit the
    rest in descending counter order, skipping candidates whose counter
    fails Theorem 1's bound.  The descending walk stops entirely once a
    counter falls below the *query-length-only* bound
    ``l_Q - q + 1 - bestSoFar*q``: that bound is a floor of every
    candidate's individual bound, so all remaining (smaller) counters
    must fail too — the length-safe version of the paper's line 16 break.
    """
    start = time.perf_counter()
    result = _ResultList(k)
    stats = SearchStats(database_size=len(database))
    pruner = QgramIndexPruner(database, q=q, structure=structure, axis=axis)
    query_pruner = pruner.for_query(query)
    counters = query_pruner.counters
    order = np.argsort(-counters, kind="stable")

    for rank, candidate_index in enumerate(map(int, order)):
        best = result.best_so_far
        if np.isfinite(best):
            floor_bound = len(query) - q + 1 - best * q
            if counters[candidate_index] < floor_bound:
                remaining = len(order) - rank
                stats.pruned_by[query_pruner.name] = (
                    stats.pruned_by.get(query_pruner.name, 0) + remaining
                )
                break
            if query_pruner.lower_bound(candidate_index) > best:
                stats.credit(query_pruner.name)
                continue
        distance = _true_distance(database, query, candidate_index, stats)
        result.offer(candidate_index, distance)
    stats.elapsed_seconds = time.perf_counter() - start
    return result.neighbors(), stats


def knn_sorted_search(
    database: TrajectoryDatabase,
    query: Trajectory,
    k: int,
    primary: Pruner,
    secondary: Sequence[Pruner] = (),
    early_abandon: bool = False,
) -> SearchResult:
    """Combined search with sorted access on the primary pruner.

    The paper's combined methods (Section 5.4) run the histogram stage
    in HSR form: all primary lower bounds are computed up front and
    candidates are visited in ascending order, so the scan stops at the
    first bound that cannot beat the k-th distance; the remaining
    pruners filter the candidates that are actually visited.  This is
    that engine with any pruner in the primary role.
    """
    start = time.perf_counter()
    result = _ResultList(k)
    stats = SearchStats(database_size=len(database))
    primary_query = primary.for_query(query)
    secondary_queries = [pruner.for_query(query) for pruner in secondary]
    # Order by the primary's *quick* bound: sound, so the sorted break
    # stays exact, but cheap enough to evaluate for the whole database.
    bounds = np.array(
        [primary_query.quick_lower_bound(index) for index in range(len(database))]
    )
    order = np.argsort(bounds, kind="stable")
    for rank, candidate_index in enumerate(map(int, order)):
        best = result.best_so_far
        if np.isfinite(best) and bounds[candidate_index] > best:
            remaining = len(order) - rank
            stats.pruned_by[primary_query.name] = (
                stats.pruned_by.get(primary_query.name, 0) + remaining
            )
            break
        pruned = False
        if np.isfinite(best):
            # Staged exact primary bound, then the secondary pruners.
            if primary_query.lower_bound(candidate_index, best) > best:
                stats.credit(primary_query.name)
                pruned = True
            else:
                for query_pruner in secondary_queries:
                    if query_pruner.lower_bound(candidate_index, best) > best:
                        stats.credit(query_pruner.name)
                        pruned = True
                        break
        if pruned:
            continue
        bound = best if early_abandon and np.isfinite(best) else None
        distance = _true_distance(database, query, candidate_index, stats, bound)
        if np.isfinite(distance):
            primary_query.record(candidate_index, distance)
            for query_pruner in secondary_queries:
                query_pruner.record(candidate_index, distance)
        result.offer(candidate_index, distance)
    stats.elapsed_seconds = time.perf_counter() - start
    return result.neighbors(), stats
