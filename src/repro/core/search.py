"""Exact k-NN search over EDR with the paper's pruning methods.

All engines return the same answers as a sequential scan (the
no-false-dismissal guarantee of Section 4); they differ in how many true
EDR computations they avoid and therefore in speed.  Each engine reports
a :class:`SearchStats` with the two quantities the paper's experiments
measure: *pruning power* (fraction of database trajectories whose true
distance was never computed) and wall-clock time (from which the bench
harness derives *speedup ratio* against the sequential scan).

The pruning methods share one interface: a :class:`Pruner` bound to a
database produces, per query, a :class:`QueryPruner` exposing
``lower_bound(candidate_index)``; a candidate is skipped when its lower
bound exceeds the current k-th best distance.  Three pruner families are
provided (histograms, mean-value Q-grams, near triangle inequality) plus
two specialized engines: :func:`knn_sorted_scan` (the paper's HSR —
visit candidates in ascending lower-bound order and stop at the first
bound that cannot beat the k-th distance) and :func:`knn_qgram_index`
(Figure 3 — probe a Q-gram index, then visit candidates in descending
common-count order).
"""

from __future__ import annotations

import time
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..index.mergejoin import (
    bulk_count_common,
    count_common_sorted_1d,
    count_common_sorted_2d,
    sort_means_1d,
    sort_means_2d,
)
from .database import TrajectoryDatabase
from .edr import edr
from .edr_batch import DEFAULT_REFINE_BATCH_SIZE
from .edr_bitparallel import edr_bitparallel
from .histogram import (
    histogram_distance,
    histogram_distance_quick,
    histogram_window_bound,
)
from .kernels import KernelPlan, length_bucket, resolve_kernel_plan, run_kernel
from .neartriangle import NearTrianglePruner as _NearTriangleState
from .qgram import mean_value_qgrams
from .trajectory import Trajectory

__all__ = [
    "Neighbor",
    "SearchStats",
    "SearchResult",
    "Pruner",
    "QueryPruner",
    "HistogramPruner",
    "QgramMergeJoinPruner",
    "QgramIndexPruner",
    "NearTrianglePruning",
    "knn_scan",
    "knn_search",
    "knn_sorted_scan",
    "knn_sorted_search",
    "knn_qgram_index",
]


@dataclass(frozen=True)
class Neighbor:
    """One k-NN answer: database index and its true EDR distance."""

    index: int
    distance: float


@dataclass
class SearchStats:
    """Counters for one k-NN query, in the paper's Section 5 vocabulary.

    ``start_method`` is set by engines that ran (part of) the query on a
    process pool: the multiprocessing start method the pool used, so
    performance numbers are attributable (fork inherits state; spawn
    pickles it per worker).  ``None`` means the query ran in-process.
    """

    database_size: int
    true_distance_computations: int = 0
    pruned_by: Dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    start_method: Optional[str] = None
    # Refine-kernel attribution: the requested kernel choice, the kernel
    # actually used per length bucket, and per-kernel DP cell counts and
    # seconds (throughput = cells / seconds).  Purely observational —
    # every kernel returns byte-identical distances.
    kernel: Optional[str] = None
    kernel_buckets: Dict[str, str] = field(default_factory=dict)
    kernel_cells: Dict[str, int] = field(default_factory=dict)
    kernel_seconds: Dict[str, float] = field(default_factory=dict)
    # Tiered-storage attribution (PR 7): bytes of columnar filter
    # artifacts actually touched, physical pages read through the buffer
    # pool, and the pool's hit/miss/eviction tallies for this query.
    # All zero for fully in-memory engines.
    bytes_touched: int = 0
    pages_read: int = 0
    pool_hits: int = 0
    pool_misses: int = 0
    pool_evictions: int = 0
    # Block-skipping sorted access (tiered stores): skip blocks whose
    # summary bound was evaluated vs. blocks whose rows were faulted in.
    blocks_total: int = 0
    blocks_opened: int = 0
    # Subtrajectory (windowed) search accounting: how many banded
    # windows the query defined over the database, how many had their
    # exact distance computed, how many a window-sound pruner bound
    # retired wholesale, and how many the row DP proved farther than the
    # frozen threshold.  The four satisfy
    # ``evaluated + pruned + abandoned == total`` and are byte-identical
    # across the serial/sharded/tiered engines (frozen-round thresholds,
    # batch-independent row DP).  All zero for whole-trajectory queries.
    windows_total: int = 0
    windows_evaluated: int = 0
    windows_pruned: int = 0
    windows_abandoned: int = 0

    @property
    def pool_hit_rate(self) -> float:
        total = self.pool_hits + self.pool_misses
        return self.pool_hits / total if total else 0.0

    @property
    def pruning_power(self) -> float:
        """Fraction of trajectories whose true EDR was never computed."""
        if self.database_size == 0:
            return 0.0
        avoided = self.database_size - self.true_distance_computations
        return avoided / self.database_size

    def credit(self, pruner_name: str) -> None:
        self.pruned_by[pruner_name] = self.pruned_by.get(pruner_name, 0) + 1

    def note_kernel(self, kernel: str, cells: int, seconds: float) -> None:
        """Attribute one refine call's DP volume to its kernel."""
        self.kernel_cells[kernel] = self.kernel_cells.get(kernel, 0) + int(cells)
        self.kernel_seconds[kernel] = (
            self.kernel_seconds.get(kernel, 0.0) + float(seconds)
        )

    def kernel_throughput(self) -> Dict[str, float]:
        """Measured DP cells per second, per kernel used in this query."""
        return {
            name: (self.kernel_cells[name] / seconds) if seconds > 0.0 else 0.0
            for name, seconds in self.kernel_seconds.items()
        }


SearchResult = Tuple[List[Neighbor], SearchStats]


class _ResultList:
    """The paper's ``result`` array: k best (index, distance), sorted.

    Ties are broken *canonically* on the database index: the list holds
    the k smallest ``(distance, index)`` pairs, regardless of the order
    offers arrive in.  This makes the k-NN answer a pure function of the
    candidate distances — every engine (database-order scan, sorted
    scan, the sharded round engine merging shard results concurrently)
    returns byte-for-byte the same neighbors, which is what lets the
    sharded engine assert exact equality against the serial one.
    Exactness is unaffected: engines prune on ``bound > best_so_far``
    (strictly), so an equal-distance candidate that could displace a
    larger-index member is never pruned away.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self._items: List[Neighbor] = []
        self._keys: List[Tuple[float, int]] = []  # parallel bisect keys

    @property
    def best_so_far(self) -> float:
        """The current k-th distance — infinite until k answers exist."""
        if len(self._items) < self.k:
            return float("inf")
        return self._keys[-1][0]

    def offer(self, index: int, distance: float) -> None:
        if not np.isfinite(distance):
            return
        key = (distance, index)
        if len(self._items) >= self.k and key >= self._keys[-1]:
            return
        position = bisect_right(self._keys, key)
        self._items.insert(position, Neighbor(index, distance))
        self._keys.insert(position, key)
        del self._items[self.k :]
        del self._keys[self.k :]

    def neighbors(self) -> List[Neighbor]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)


# ----------------------------------------------------------------------
# Pruner interface and implementations
# ----------------------------------------------------------------------
class QueryPruner:
    """Per-query pruning state; see :class:`Pruner`.

    Besides the scalar per-candidate bounds, every query pruner exposes
    *bulk* kernels that evaluate the bound for the whole database in one
    vectorized call.  The bulk values are exactly equal to the scalar
    ones (the property-based test suite asserts it per pruner family),
    so engines may freely mix the two paths without changing answers.

    Two class attributes describe the pruner to the engines:

    ``dynamic``
        True when the bound can *tighten during a scan* (near triangle
        inequality records true distances as it goes).  Engines must not
        cache a dynamic pruner's bulk arrays across candidates.
    ``two_stage``
        True when :meth:`exact_lower_bound` is strictly stronger (and
        more expensive) than :meth:`quick_lower_bound`; engines consult
        the quick bound first and pay the exact bound only when the
        quick bound fails to prune.
    ``exact_stage_cheap``
        Cost class of :meth:`exact_lower_bound` relative to one batched
        EDR verification.  False marks exact stages that can cost more
        than the refinement they try to avoid (the 2-D histogram bound
        runs a Python max-flow); cost-aware engines may then skip the
        exact stage and verify directly — a pure scheduling choice that
        never changes answers, only which stage pays for the candidate.
    """

    name: str = "base"
    database_size: int = 0
    dynamic: bool = False
    two_stage: bool = False
    exact_stage_cheap: bool = True

    def lower_bound(
        self, candidate_index: int, threshold: float = float("inf")
    ) -> float:
        """A proven lower bound of ``EDR(query, candidate)``.

        ``threshold`` is the value the caller will compare against (the
        current k-th best distance, or a range radius).  Pruners with a
        cheap-but-weak bound may return it as soon as it already exceeds
        the threshold, skipping their expensive exact bound; any
        returned value must still be a sound lower bound.
        """
        raise NotImplementedError

    def record(self, candidate_index: int, true_distance: float) -> None:
        """Hook called after a true distance is computed (NTI uses it)."""

    def quick_lower_bound(self, candidate_index: int) -> float:
        """A cheaper (possibly weaker) sound lower bound.

        Sorted-access engines use it to order candidates without paying
        the exact bound for the whole database; the default simply
        defers to :meth:`lower_bound`.
        """
        return self.lower_bound(candidate_index)

    def exact_lower_bound(self, candidate_index: int) -> float:
        """The pruner's strongest bound, with no threshold short-cut."""
        return self.lower_bound(candidate_index)

    def bulk_quick_lower_bounds(self) -> np.ndarray:
        """:meth:`quick_lower_bound` for every candidate, vectorized.

        The default loops the scalar method, so third-party pruners keep
        working; the built-in families override it with array kernels.
        """
        return np.array(
            [
                self.quick_lower_bound(candidate_index)
                for candidate_index in range(self.database_size)
            ],
            dtype=np.float64,
        )

    def bulk_lower_bounds(self, threshold: float = float("inf")) -> np.ndarray:
        """:meth:`lower_bound` for every candidate, vectorized.

        Sound lower bounds for the whole database in one call, with the
        same staged semantics as the scalar method: entries whose quick
        bound already exceeds ``threshold`` may carry the quick value
        instead of the exact one.  Exact-equivalent to the scalar path.
        """
        return np.array(
            [
                self.lower_bound(candidate_index, threshold)
                for candidate_index in range(self.database_size)
            ],
            dtype=np.float64,
        )

    def window_lower_bound(self, candidate_index: int) -> float:
        """A bound on ``EDR(query, w)`` valid for *every* window ``w``.

        Whole-trajectory lower bounds do not transfer to windows (a
        window can be far closer than its trajectory), so the
        subtrajectory engine consults this dedicated bound instead: one
        value per trajectory proven to undercut the distance of each of
        its contiguous windows, making a single comparison against the
        k-th best window distance prune all windows at once.  The
        default is the trivial (always sound) zero; families with a
        window-monotone summary override it.
        """
        return 0.0

    def bulk_window_lower_bounds(self) -> np.ndarray:
        """:meth:`window_lower_bound` for every candidate, vectorized."""
        return np.array(
            [
                self.window_lower_bound(candidate_index)
                for candidate_index in range(self.database_size)
            ],
            dtype=np.float64,
        )


class Pruner:
    """A pruning method bound to a database.

    ``for_query`` performs the per-query precomputation (query histogram,
    query Q-gram means, index probes...) and returns a
    :class:`QueryPruner` whose ``lower_bound`` is consulted per candidate.
    """

    name: str = "base"

    def for_query(self, query: Trajectory) -> QueryPruner:
        raise NotImplementedError


class _HistogramQuery(QueryPruner):
    two_stage = True

    def __init__(
        self,
        name: str,
        query_histograms: List[dict],
        database_histograms: List[List[dict]],
        array_stores: Optional[List] = None,
    ) -> None:
        self.name = name
        self._query = query_histograms
        self._database = database_histograms
        self._stores = array_stores
        self.database_size = len(database_histograms[0])
        # 1-D bins take the exact greedy; d-D bins run the Python
        # max-flow, which can cost more than one batched EDR row.
        self.exact_stage_cheap = all(
            len(next(iter(histogram), (0,))) == 1
            for histogram in query_histograms
        )

    def lower_bound(
        self, candidate_index: int, threshold: float = float("inf")
    ) -> float:
        # Stage 1: the cheap neighbourhood bound — when it already beats
        # the threshold the exact flow computation is unnecessary.
        if np.isfinite(threshold):
            quick = self.quick_lower_bound(candidate_index)
            if quick > threshold:
                return quick
        # Stage 2: the exact HD.  With several projections (the 1-D
        # per-axis variant) every HD is a lower bound, so the max is the
        # tightest combination.
        return self.exact_lower_bound(candidate_index)

    def quick_lower_bound(self, candidate_index: int) -> float:
        return float(
            max(
                histogram_distance_quick(
                    query_histogram, per_axis[candidate_index]
                )
                for query_histogram, per_axis in zip(self._query, self._database)
            )
        )

    def exact_lower_bound(self, candidate_index: int) -> float:
        return float(
            max(
                histogram_distance(query_histogram, per_axis[candidate_index])
                for query_histogram, per_axis in zip(self._query, self._database)
            )
        )

    def bulk_quick_lower_bounds(self) -> np.ndarray:
        if self._stores is None:
            return super().bulk_quick_lower_bounds()
        quick = self._stores[0].bulk_quick_bounds(self._query[0])
        for query_histogram, store in zip(self._query[1:], self._stores[1:]):
            np.maximum(quick, store.bulk_quick_bounds(query_histogram), out=quick)
        return quick.astype(np.float64)

    def bulk_lower_bounds(self, threshold: float = float("inf")) -> np.ndarray:
        bounds = self.bulk_quick_lower_bounds()
        if np.isfinite(threshold):
            survivors = np.nonzero(bounds <= threshold)[0]
        else:
            survivors = np.arange(self.database_size)
        for candidate_index in map(int, survivors):
            bounds[candidate_index] = self.exact_lower_bound(candidate_index)
        return bounds

    def window_lower_bound(self, candidate_index: int) -> float:
        # A window's histogram is elementwise dominated by its
        # trajectory's, so the query-side matchable-mass cap against the
        # whole trajectory upper-bounds matches against any window — and
        # each axis bounds alone, so the per-axis max stays sound.
        return float(
            max(
                histogram_window_bound(
                    query_histogram, per_axis[candidate_index]
                )
                for query_histogram, per_axis in zip(self._query, self._database)
            )
        )

    def bulk_window_lower_bounds(self) -> np.ndarray:
        if self._stores is None:
            return super().bulk_window_lower_bounds()
        bounds = self._stores[0].bulk_window_bounds(self._query[0])
        for query_histogram, store in zip(self._query[1:], self._stores[1:]):
            np.maximum(
                bounds, store.bulk_window_bounds(query_histogram), out=bounds
            )
        return bounds.astype(np.float64)


class HistogramPruner(Pruner):
    """Trajectory-histogram pruning (Section 4.3).

    ``delta`` scales the bin size to δ·ε (the paper's 2HE/2H2E/... series);
    ``per_axis=True`` switches to the 1-D per-axis histograms of
    Corollary 1 (the paper's 1HE), taking the max of the per-axis HDs.
    """

    def __init__(
        self,
        database: TrajectoryDatabase,
        delta: float = 1.0,
        per_axis: bool = False,
    ) -> None:
        self._database = database
        self._delta = float(delta)
        self._per_axis = per_axis
        if per_axis:
            self.name = f"histogram-1d(delta={delta:g})"
            self._variants = [
                database.histograms(delta=delta, axis=axis)
                for axis in range(database.ndim)
            ]
            self._stores = [
                database.histogram_arrays(delta=delta, axis=axis)
                for axis in range(database.ndim)
            ]
        else:
            self.name = f"histogram-2d(delta={delta:g})"
            self._variants = [database.histograms(delta=delta)]
            self._stores = [database.histogram_arrays(delta=delta)]

    def for_query(self, query: Trajectory) -> QueryPruner:
        query_histograms = []
        database_histograms = []
        for axis, (space, built) in enumerate(self._variants):
            projected = query.projection(axis) if self._per_axis else query
            query_histograms.append(space.histogram(projected))
            database_histograms.append(built)
        return _HistogramQuery(
            self.name, query_histograms, database_histograms, self._stores
        )


class _QgramMergeJoinQuery(QueryPruner):
    def __init__(
        self,
        name: str,
        query_sorted: np.ndarray,
        candidates_sorted: List[np.ndarray],
        query_length: int,
        lengths: np.ndarray,
        q: int,
        epsilon: float,
        two_dimensional: bool,
        flat_pool: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> None:
        self.name = name
        self._query_sorted = query_sorted
        self._candidates = candidates_sorted
        self._query_length = query_length
        self._lengths = lengths
        self._q = q
        self._epsilon = epsilon
        self._two_dimensional = two_dimensional
        self._flat_pool = flat_pool
        self._bulk_bounds: Optional[np.ndarray] = None
        self._bulk_common: Optional[np.ndarray] = None
        self.database_size = len(candidates_sorted)

    def _common(self, candidate_index: int) -> int:
        candidate = self._candidates[candidate_index]
        if self._two_dimensional:
            return count_common_sorted_2d(
                self._query_sorted, candidate, self._epsilon
            )
        return count_common_sorted_1d(
            self._query_sorted, candidate, self._epsilon
        )

    def lower_bound(
        self, candidate_index: int, threshold: float = float("inf")
    ) -> float:
        common = self._common(candidate_index)
        longest = max(self._query_length, int(self._lengths[candidate_index]))
        # Theorem 1 rearranged: EDR >= (max(m, n) - q + 1 - common) / q.
        return max(0.0, (longest - self._q + 1 - common) / self._q)

    def _common_counts(self) -> np.ndarray:
        """Merge-join common counts against the whole pool, cached."""
        if self._bulk_common is None:
            pool_values, pool_owners = self._flat_pool
            self._bulk_common = bulk_count_common(
                self._query_sorted,
                pool_values,
                pool_owners,
                self.database_size,
                self._epsilon,
            )
        return self._bulk_common

    def bulk_lower_bounds(self, threshold: float = float("inf")) -> np.ndarray:
        if self._bulk_bounds is not None:
            return self._bulk_bounds.copy()
        if self._flat_pool is None:
            bounds = super().bulk_lower_bounds(threshold)
            self._bulk_bounds = bounds.copy()
            return bounds
        common = self._common_counts()
        longest = np.maximum(self._query_length, self._lengths.astype(np.int64))
        bounds = np.maximum(0.0, (longest - self._q + 1 - common) / self._q)
        self._bulk_bounds = bounds
        return bounds.copy()

    def bulk_quick_lower_bounds(self) -> np.ndarray:
        return self.bulk_lower_bounds()

    def window_lower_bound(self, candidate_index: int) -> float:
        # A window's Q-grams are a sub-multiset of its trajectory's, so
        # ``common(query, window) <= common(query, trajectory)``; with
        # ``max(m, |window|) >= m`` Theorem 1 becomes a bound every
        # window of the candidate satisfies.
        common = self._common(candidate_index)
        return max(
            0.0, (self._query_length - self._q + 1 - common) / self._q
        )

    def bulk_window_lower_bounds(self) -> np.ndarray:
        if self._flat_pool is None:
            return super().bulk_window_lower_bounds()
        common = self._common_counts()
        return np.maximum(
            0.0, (self._query_length - self._q + 1 - common) / self._q
        )


class QgramMergeJoinPruner(Pruner):
    """Mean-value Q-gram pruning via merge join — PS2 (2-D) / PS1 (1-D)."""

    def __init__(
        self,
        database: TrajectoryDatabase,
        q: int = 1,
        two_dimensional: bool = True,
        axis: int = 0,
    ) -> None:
        self._database = database
        self._q = q
        self._two_dimensional = two_dimensional
        self._axis = axis
        if two_dimensional:
            self.name = f"qgram-ps2(q={q})"
            self._candidates = database.sorted_qgram_means(q)
            self._flat_pool = database.flat_qgram_means(q)
        else:
            self.name = f"qgram-ps1(q={q})"
            self._candidates = database.sorted_qgram_means_1d(q, axis)
            self._flat_pool = database.flat_qgram_means_1d(q, axis)

    def for_query(self, query: Trajectory) -> QueryPruner:
        if self._two_dimensional:
            query_sorted = sort_means_2d(mean_value_qgrams(query, self._q))
        else:
            query_sorted = sort_means_1d(
                mean_value_qgrams(query.projection(self._axis), self._q)
            )
        return _QgramMergeJoinQuery(
            self.name,
            query_sorted,
            self._candidates,
            len(query),
            self._database.lengths,
            self._q,
            self._database.epsilon,
            self._two_dimensional,
            self._flat_pool,
        )


class _QgramIndexQuery(QueryPruner):
    def __init__(
        self,
        name: str,
        counters: np.ndarray,
        query_length: int,
        lengths: np.ndarray,
        q: int,
    ) -> None:
        self.name = name
        self.counters = counters
        self._query_length = query_length
        self._lengths = lengths
        self._q = q
        self.database_size = len(lengths)

    def lower_bound(
        self, candidate_index: int, threshold: float = float("inf")
    ) -> float:
        common = int(self.counters[candidate_index])
        longest = max(self._query_length, int(self._lengths[candidate_index]))
        return max(0.0, (longest - self._q + 1 - common) / self._q)

    def bulk_lower_bounds(self, threshold: float = float("inf")) -> np.ndarray:
        # Theorem 1 vectorized over the per-trajectory common counters.
        longest = np.maximum(self._query_length, self._lengths.astype(np.int64))
        return np.maximum(
            0.0, (longest - self._q + 1 - self.counters.astype(np.int64)) / self._q
        )

    def bulk_quick_lower_bounds(self) -> np.ndarray:
        return self.bulk_lower_bounds()

    def window_lower_bound(self, candidate_index: int) -> float:
        # The probe counters count query Q-grams matched anywhere in the
        # trajectory, an upper bound on matches inside any window — the
        # same sub-multiset argument as the merge-join family.
        common = int(self.counters[candidate_index])
        return max(
            0.0, (self._query_length - self._q + 1 - common) / self._q
        )

    def bulk_window_lower_bounds(self) -> np.ndarray:
        return np.maximum(
            0.0,
            (self._query_length - self._q + 1 - self.counters.astype(np.int64))
            / self._q,
        )


class QgramIndexPruner(Pruner):
    """Mean-value Q-gram pruning via index probes — PR (R-tree) / PB (B+-tree).

    ``for_query`` probes the index once per query Q-gram and accumulates
    per-trajectory common counters (each query Q-gram counts one match
    per trajectory at most), after which the lower bound is O(1) per
    candidate.
    """

    def __init__(
        self,
        database: TrajectoryDatabase,
        q: int = 1,
        structure: str = "rtree",
        axis: int = 0,
    ) -> None:
        if structure not in ("rtree", "bptree"):
            raise ValueError("structure must be 'rtree' or 'bptree'")
        self._database = database
        self._q = q
        self._structure = structure
        self._axis = axis
        self.name = f"qgram-{'pr' if structure == 'rtree' else 'pb'}(q={q})"
        if structure == "rtree":
            self._index = database.qgram_rtree(q)
        else:
            self._index = database.qgram_bptree(q, axis)

    def for_query(self, query: Trajectory) -> QueryPruner:
        epsilon = self._database.epsilon
        if self._structure == "rtree":
            means = mean_value_qgrams(query, self._q)

            def probe(mean):
                return self._index.match_search(mean, epsilon)

        else:
            means = mean_value_qgrams(query.projection(self._axis), self._q).ravel()

            def probe(mean):
                return self._index.match_search(float(mean), epsilon)

        # Accumulate (probe, trajectory) hits and count each query Q-gram
        # once per trajectory with one deduplicated bincount instead of a
        # Python set per probe.
        hits: List[np.ndarray] = []
        database_size = len(self._database)
        for probe_number, mean in enumerate(means):
            matched = np.asarray(probe(mean), dtype=np.int64)
            if matched.size:
                hits.append(matched + probe_number * database_size)
        if hits:
            unique_pairs = np.unique(np.concatenate(hits))
            counters = np.bincount(
                unique_pairs % database_size, minlength=database_size
            )
        else:
            counters = np.zeros(database_size, dtype=np.int64)
        return _QgramIndexQuery(
            self.name, counters, len(query), self._database.lengths, self._q
        )


class _NearTriangleQuery(QueryPruner):
    dynamic = True

    def __init__(self, name: str, state: _NearTriangleState, lengths: np.ndarray):
        self.name = name
        self._state = state
        self._lengths = lengths
        self.database_size = len(lengths)

    def lower_bound(
        self, candidate_index: int, threshold: float = float("inf")
    ) -> float:
        return self._state.lower_bound(
            candidate_index, int(self._lengths[candidate_index])
        )

    def bulk_lower_bounds(self, threshold: float = float("inf")) -> np.ndarray:
        return self._state.bulk_lower_bounds(self._lengths)

    def bulk_quick_lower_bounds(self) -> np.ndarray:
        return self.bulk_lower_bounds()

    def record(self, candidate_index: int, true_distance: float) -> None:
        self._state.record(candidate_index, true_distance)


class NearTrianglePruning(Pruner):
    """Near-triangle-inequality pruning (Section 4.2, Theorem 5)."""

    def __init__(
        self,
        database: TrajectoryDatabase,
        max_triangle: int = 400,
        policy: str = "first",
        matrix_workers: Optional[int] = None,
    ) -> None:
        self._database = database
        self._max_triangle = max_triangle
        self.name = f"near-triangle(max={max_triangle}, {policy})"
        self._columns = database.reference_columns(
            max_triangle, policy=policy, workers=matrix_workers
        )

    def for_query(self, query: Trajectory) -> QueryPruner:
        state = _NearTriangleState(self._columns, self._max_triangle)
        return _NearTriangleQuery(self.name, state, self._database.lengths)


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------
def _quick_bound_arrays(
    query_pruners: Sequence[QueryPruner],
) -> List[Optional[np.ndarray]]:
    """One bulk quick-bound array per *static* pruner (None for dynamic).

    This is the array-native filter phase: every static pruner's quick
    bound for the whole database is materialized in one vectorized call,
    so the per-candidate pruning test becomes an array lookup instead of
    a Python call into dictionary / merge-join code.
    """
    return [
        None if query_pruner.dynamic else query_pruner.bulk_quick_lower_bounds()
        for query_pruner in query_pruners
    ]


def _prunes_candidate(
    query_pruner: QueryPruner,
    quick_array: Optional[np.ndarray],
    candidate_index: int,
    threshold: float,
) -> bool:
    """Exactly ``query_pruner.lower_bound(candidate, threshold) > threshold``.

    Stage 1 reads the precomputed quick bound from ``quick_array``; stage
    2 (two-stage pruners only) pays the exact bound when the quick bound
    fails to prune.  Dynamic pruners (``quick_array is None``) evaluate
    with their current scan state.
    """
    if quick_array is None:
        return query_pruner.lower_bound(candidate_index, threshold) > threshold
    if quick_array[candidate_index] > threshold:
        return True
    if query_pruner.two_stage:
        return query_pruner.exact_lower_bound(candidate_index) > threshold
    return False


def _true_distance(
    database: TrajectoryDatabase,
    query: Trajectory,
    candidate_index: int,
    stats: SearchStats,
    bound: Optional[float] = None,
    plan: Optional[KernelPlan] = None,
) -> float:
    stats.true_distance_computations += 1
    candidate = database.trajectories[candidate_index]
    # Unbatched path: there is nothing to batch, so the kernel choice
    # only distinguishes the bit-parallel single-pair kernel from plain
    # ``edr`` (bit-identical results, sentinels included).
    if plan is not None and plan.kernel_for_length(len(candidate)) == "bitparallel":
        executed, kernel_fn = "bitparallel", edr_bitparallel
    else:
        executed, kernel_fn = "scalar", edr
    start = time.perf_counter()
    distance = kernel_fn(query, candidate, database.epsilon, bound=bound)
    stats.note_kernel(
        executed, len(query) * len(candidate), time.perf_counter() - start
    )
    return distance


class _PendingBatches:
    """Length-bucketed buffer of candidates awaiting batched verification.

    Engines with batched refinement push surviving candidates here
    instead of paying a scalar ``edr`` call immediately.  Buckets group
    lengths by power of two, so one batch's shared padded width is less
    than twice any member's length; a bucket is handed back for
    verification the moment it reaches the batch size, and
    :meth:`drain` releases whatever remains at scan end.
    """

    def __init__(self, batch_size: int) -> None:
        self._batch_size = batch_size
        self._buckets: Dict[int, List[int]] = {}
        self.total = 0

    def add(self, candidate_index: int, length: int) -> Optional[List[int]]:
        """Buffer one candidate; return a full bucket if this filled it."""
        key = length_bucket(length)
        bucket = self._buckets.setdefault(key, [])
        bucket.append(candidate_index)
        self.total += 1
        if len(bucket) >= self._batch_size:
            del self._buckets[key]
            self.total -= len(bucket)
            return bucket
        return None

    def drain(self) -> List[List[int]]:
        """Hand back every pending bucket (shortest lengths first)."""
        buckets = [self._buckets[key] for key in sorted(self._buckets)]
        self._buckets = {}
        self.total = 0
        return buckets


def _refine_batch(
    database: TrajectoryDatabase,
    query: Trajectory,
    candidate_indices: List[int],
    result: _ResultList,
    stats: SearchStats,
    query_pruners: Sequence[QueryPruner],
    early_abandon: bool,
    plan: KernelPlan,
) -> None:
    """Verify one candidate batch with the selected batched EDR kernel.

    Exactly equivalent to a loop of :func:`_true_distance` + ``record``
    + ``offer`` calls, except the k-th-best bound used for early
    abandoning is the one in force when the batch is flushed (it can
    only be looser than the scalar loop's per-candidate bound, so every
    abandonment stays sound).  Abandoned candidates count as true
    distance computations, matching the scalar early-abandon path.
    The kernel is chosen per length bucket from ``plan``; every kernel
    returns the same distances and sentinels bit for bit, so the choice
    never changes answers or counters.
    """
    best = result.best_so_far
    bound = best if early_abandon and np.isfinite(best) else None
    bucket = length_bucket(int(database.lengths[candidate_indices[0]]))
    kernel = plan.kernel_for_bucket(bucket)
    stats.kernel_buckets[str(bucket)] = kernel
    # Disk-resident trajectory lists expose ``fetch_many`` for batched,
    # extent-ordered readahead; plain lists take the comprehension path.
    fetch_many = getattr(database.trajectories, "fetch_many", None)
    if fetch_many is not None:
        candidates = fetch_many(candidate_indices)
    else:
        candidates = [database.trajectories[index] for index in candidate_indices]
    start = time.perf_counter()
    distances = run_kernel(
        kernel, query, candidates, database.epsilon, bounds=bound
    )
    stats.note_kernel(
        kernel,
        len(query) * int(sum(len(candidate) for candidate in candidates)),
        time.perf_counter() - start,
    )
    stats.true_distance_computations += len(candidate_indices)
    for candidate_index, distance in zip(candidate_indices, distances):
        distance = float(distance)
        if np.isfinite(distance):
            for query_pruner in query_pruners:
                query_pruner.record(candidate_index, distance)
        result.offer(candidate_index, distance)


def _normalized_batch_size(refine_batch_size: Optional[int]) -> Optional[int]:
    """``None`` disables batching; so does any size that cannot batch."""
    if refine_batch_size is None or refine_batch_size <= 1:
        return None
    return int(refine_batch_size)


def knn_scan(
    database: TrajectoryDatabase,
    query: Trajectory,
    k: int,
    edr_kernel: Optional[str] = None,
) -> SearchResult:
    """Sequential scan: the pruning-free baseline every speedup is measured against."""
    start = time.perf_counter()
    result = _ResultList(k)
    stats = SearchStats(database_size=len(database))
    plan = resolve_kernel_plan(database, edr_kernel)
    stats.kernel = plan.requested
    for candidate_index in range(len(database)):
        distance = _true_distance(
            database, query, candidate_index, stats, plan=plan
        )
        result.offer(candidate_index, distance)
    stats.elapsed_seconds = time.perf_counter() - start
    return result.neighbors(), stats


def knn_search(
    database: TrajectoryDatabase,
    query: Trajectory,
    k: int,
    pruners: Sequence[Pruner],
    early_abandon: bool = False,
    refine_batch_size: Optional[int] = DEFAULT_REFINE_BATCH_SIZE,
    edr_kernel: Optional[str] = None,
) -> SearchResult:
    """Sequential k-NN with a chain of pruners (Figure 6's skeleton).

    Candidates are visited in database order.  The first k candidates
    initialize the result with true distances; afterwards each pruner is
    consulted in the given order and the first one whose lower bound
    exceeds the current k-th distance prunes the candidate (and is
    credited in the stats).  With ``early_abandon=True`` the EDR dynamic
    program itself stops as soon as the k-th distance is unreachable;
    abandoned candidates still count as true-distance computations.

    ``refine_batch_size`` controls the refinement phase: surviving
    candidates accumulate into length-bucketed batches of this size and
    are verified together through the batched EDR kernel
    (:func:`~repro.core.edr_batch.edr_many`) — the answers are exactly
    the scalar loop's, but the per-candidate Python overhead is paid
    once per batch.  The k-th-best bound a batch sees is the one in
    force at flush time, so pruning decisions can only be more
    conservative than the scalar loop's (never unsound).  ``None`` (or
    any size below 2) restores the scalar per-candidate path.

    ``edr_kernel`` selects the refine kernel (see
    :mod:`repro.core.kernels`): ``None`` keeps the legacy batched
    kernel, ``"auto"`` uses the database's autotuned per-bucket table,
    and a concrete name pins that kernel.  Answers and pruner counters
    are byte-for-byte identical for every choice.
    """
    start = time.perf_counter()
    result = _ResultList(k)
    stats = SearchStats(database_size=len(database))
    plan = resolve_kernel_plan(database, edr_kernel)
    stats.kernel = plan.requested
    query_pruners = [pruner.for_query(query) for pruner in pruners]
    quick_arrays: Optional[List[Optional[np.ndarray]]] = None
    batch_size = _normalized_batch_size(refine_batch_size)
    pending = _PendingBatches(batch_size) if batch_size is not None else None

    for candidate_index in range(len(database)):
        best = result.best_so_far
        pruned = False
        if np.isfinite(best):
            if quick_arrays is None:
                # First moment pruning can fire: materialize the bulk
                # filter arrays for every static pruner in one shot.
                quick_arrays = _quick_bound_arrays(query_pruners)
            for query_pruner, quick_array in zip(query_pruners, quick_arrays):
                if _prunes_candidate(query_pruner, quick_array, candidate_index, best):
                    stats.credit(query_pruner.name)
                    pruned = True
                    break
        if pruned:
            continue
        if pending is None:
            bound = best if early_abandon and np.isfinite(best) else None
            distance = _true_distance(
                database, query, candidate_index, stats, bound, plan
            )
            if np.isfinite(distance):
                for query_pruner in query_pruners:
                    query_pruner.record(candidate_index, distance)
            result.offer(candidate_index, distance)
            continue
        full_bucket = pending.add(
            candidate_index, int(database.lengths[candidate_index])
        )
        if full_bucket is not None:
            _refine_batch(
                database, query, full_bucket, result, stats,
                query_pruners, early_abandon, plan,
            )
        elif not np.isfinite(result.best_so_far) and pending.total >= max(
            k - len(result), 1
        ):
            # Seed the k-th-best bound as promptly as the scalar loop:
            # once enough candidates are pending to fill the result,
            # flush them so pruning can start firing.
            for bucket in pending.drain():
                _refine_batch(
                    database, query, bucket, result, stats,
                    query_pruners, early_abandon, plan,
                )
    if pending is not None:
        for bucket in pending.drain():
            _refine_batch(
                database, query, bucket, result, stats,
                query_pruners, early_abandon, plan,
            )
    stats.elapsed_seconds = time.perf_counter() - start
    return result.neighbors(), stats


def knn_sorted_scan(
    database: TrajectoryDatabase,
    query: Trajectory,
    k: int,
    pruner: Pruner,
    early_abandon: bool = False,
    edr_kernel: Optional[str] = None,
) -> SearchResult:
    """Sorted scan (the paper's HSR): visit in ascending lower-bound order.

    The ordering pass uses the pruner's *quick* bound, computed for the
    whole database in one bulk kernel call: the quick bound is still a
    sound lower bound of EDR, so stopping at the first sorted bound that
    exceeds the current k-th distance remains exact, but the ordering no
    longer pays the expensive exact bound for every database member.
    Visited candidates of a two-stage pruner get the staged exact check
    before their true distance is computed.
    """
    start = time.perf_counter()
    result = _ResultList(k)
    stats = SearchStats(database_size=len(database))
    plan = resolve_kernel_plan(database, edr_kernel)
    stats.kernel = plan.requested
    query_pruner = pruner.for_query(query)
    bounds = np.asarray(query_pruner.bulk_quick_lower_bounds(), dtype=np.float64)
    order = np.argsort(bounds, kind="stable")
    for rank, candidate_index in enumerate(map(int, order)):
        best = result.best_so_far
        if np.isfinite(best) and bounds[candidate_index] > best:
            remaining = len(order) - rank
            stats.pruned_by[query_pruner.name] = (
                stats.pruned_by.get(query_pruner.name, 0) + remaining
            )
            break
        if (
            np.isfinite(best)
            and query_pruner.two_stage
            and query_pruner.exact_lower_bound(candidate_index) > best
        ):
            stats.credit(query_pruner.name)
            continue
        bound = best if early_abandon and np.isfinite(best) else None
        distance = _true_distance(
            database, query, candidate_index, stats, bound, plan
        )
        if np.isfinite(distance):
            query_pruner.record(candidate_index, distance)
        result.offer(candidate_index, distance)
    stats.elapsed_seconds = time.perf_counter() - start
    return result.neighbors(), stats


def knn_qgram_index(
    database: TrajectoryDatabase,
    query: Trajectory,
    k: int,
    q: int = 1,
    structure: str = "rtree",
    axis: int = 0,
    edr_kernel: Optional[str] = None,
) -> SearchResult:
    """The Qgramk-NN-index algorithm of Figure 3.

    Probe the Q-gram index to build per-trajectory common counters, seed
    the result with the k highest-counter trajectories, then visit the
    rest in descending counter order, skipping candidates whose counter
    fails Theorem 1's bound.  The descending walk stops entirely once a
    counter falls below the *query-length-only* bound
    ``l_Q - q + 1 - bestSoFar*q``: that bound is a floor of every
    candidate's individual bound, so all remaining (smaller) counters
    must fail too — the length-safe version of the paper's line 16 break.
    """
    start = time.perf_counter()
    result = _ResultList(k)
    stats = SearchStats(database_size=len(database))
    plan = resolve_kernel_plan(database, edr_kernel)
    stats.kernel = plan.requested
    pruner = QgramIndexPruner(database, q=q, structure=structure, axis=axis)
    query_pruner = pruner.for_query(query)
    counters = query_pruner.counters
    bounds = query_pruner.bulk_lower_bounds()  # Theorem 1, vectorized
    order = np.argsort(-counters, kind="stable")

    for rank, candidate_index in enumerate(map(int, order)):
        best = result.best_so_far
        if np.isfinite(best):
            floor_bound = len(query) - q + 1 - best * q
            if counters[candidate_index] < floor_bound:
                remaining = len(order) - rank
                stats.pruned_by[query_pruner.name] = (
                    stats.pruned_by.get(query_pruner.name, 0) + remaining
                )
                break
            if bounds[candidate_index] > best:
                stats.credit(query_pruner.name)
                continue
        distance = _true_distance(
            database, query, candidate_index, stats, plan=plan
        )
        result.offer(candidate_index, distance)
    stats.elapsed_seconds = time.perf_counter() - start
    return result.neighbors(), stats


def knn_sorted_search(
    database: TrajectoryDatabase,
    query: Trajectory,
    k: int,
    primary: Pruner,
    secondary: Sequence[Pruner] = (),
    early_abandon: bool = False,
    refine_batch_size: Optional[int] = DEFAULT_REFINE_BATCH_SIZE,
    edr_kernel: Optional[str] = None,
) -> SearchResult:
    """Combined search with sorted access on the primary pruner.

    The paper's combined methods (Section 5.4) run the histogram stage
    in HSR form: all primary lower bounds are computed up front and
    candidates are visited in ascending order, so the scan stops at the
    first bound that cannot beat the k-th distance; the remaining
    pruners filter the candidates that are actually visited.  This is
    that engine with any pruner in the primary role.

    ``refine_batch_size`` batches the refinement phase exactly as in
    :func:`knn_search`: visited survivors are verified through the
    batched EDR kernel in length-bucketed groups, with the sorted break
    and all pruning checks unchanged.  ``None`` restores the scalar
    per-candidate verification.
    """
    start = time.perf_counter()
    result = _ResultList(k)
    stats = SearchStats(database_size=len(database))
    plan = resolve_kernel_plan(database, edr_kernel)
    stats.kernel = plan.requested
    primary_query = primary.for_query(query)
    secondary_queries = [pruner.for_query(query) for pruner in secondary]
    all_queries = [primary_query, *secondary_queries]
    # Order by the primary's *quick* bound: sound, so the sorted break
    # stays exact, but cheap enough to evaluate for the whole database —
    # one bulk kernel call instead of N Python calls.
    bounds = np.asarray(primary_query.bulk_quick_lower_bounds(), dtype=np.float64)
    secondary_arrays: Optional[List[Optional[np.ndarray]]] = None
    order = np.argsort(bounds, kind="stable")
    batch_size = _normalized_batch_size(refine_batch_size)
    pending = _PendingBatches(batch_size) if batch_size is not None else None
    for rank, candidate_index in enumerate(map(int, order)):
        best = result.best_so_far
        if np.isfinite(best) and bounds[candidate_index] > best:
            remaining = len(order) - rank
            stats.pruned_by[primary_query.name] = (
                stats.pruned_by.get(primary_query.name, 0) + remaining
            )
            break
        pruned = False
        if np.isfinite(best):
            # Staged exact primary bound, then the secondary pruners.
            # A static primary's quick bound is already known to be
            # <= best here (the sorted break above would have fired
            # otherwise), so only its exact stage can still prune; a
            # dynamic primary re-evaluates with its current scan state.
            if primary_query.dynamic:
                primary_prunes = (
                    primary_query.lower_bound(candidate_index, best) > best
                )
            elif primary_query.two_stage:
                primary_prunes = (
                    primary_query.exact_lower_bound(candidate_index) > best
                )
            else:
                primary_prunes = False
            if primary_prunes:
                stats.credit(primary_query.name)
                pruned = True
            else:
                if secondary_arrays is None:
                    secondary_arrays = _quick_bound_arrays(secondary_queries)
                for query_pruner, quick_array in zip(
                    secondary_queries, secondary_arrays
                ):
                    if _prunes_candidate(
                        query_pruner, quick_array, candidate_index, best
                    ):
                        stats.credit(query_pruner.name)
                        pruned = True
                        break
        if pruned:
            continue
        if pending is None:
            bound = best if early_abandon and np.isfinite(best) else None
            distance = _true_distance(
                database, query, candidate_index, stats, bound, plan
            )
            if np.isfinite(distance):
                for query_pruner in all_queries:
                    query_pruner.record(candidate_index, distance)
            result.offer(candidate_index, distance)
            continue
        full_bucket = pending.add(
            candidate_index, int(database.lengths[candidate_index])
        )
        if full_bucket is not None:
            _refine_batch(
                database, query, full_bucket, result, stats,
                all_queries, early_abandon, plan,
            )
        elif not np.isfinite(result.best_so_far) and pending.total >= max(
            k - len(result), 1
        ):
            for bucket in pending.drain():
                _refine_batch(
                    database, query, bucket, result, stats,
                    all_queries, early_abandon, plan,
                )
    if pending is not None:
        for bucket in pending.drain():
            _refine_batch(
                database, query, bucket, result, stats,
                all_queries, early_abandon, plan,
            )
    stats.elapsed_seconds = time.perf_counter() - start
    return result.neighbors(), stats
