"""Batched EDR verification: many candidates through one row DP.

The refinement phase of every exact engine verifies surviving candidates
with true EDR computations.  The scalar kernel (:func:`repro.core.edr.edr`)
runs one Python-level loop iteration per element of the longer
trajectory, so verifying ``C`` candidates costs ``sum(len_i)`` Python
iterations with tiny numpy row vectors — interpreter overhead dominates.

:func:`edr_many` stacks the row DP across all candidates instead: the
candidates are padded to a shared column width ``W`` and the whole batch
advances one query element at a time through a single
``(candidates, W + 1)`` array — the match row, the tentative
(up/diagonal) minimum, and the unit-cost left-propagation running
minimum are each one vectorized call for the entire batch.  The Python
loop runs ``len(query)`` times total instead of once per (candidate,
element) pair.

Early abandoning works per candidate through *active-set compaction*: a
vector of bounds (in k-NN engines, the evolving k-th best distance)
kills candidates whose masked row minimum exceeds their bound, and the
batch physically shrinks — dead candidates stop paying for match rows,
and the shared width shrinks when the longest survivor allows it.

Exactness contract (property-tested in ``tests/test_edr_batch.py``):

* every finite entry of the result equals ``edr(query, candidate)``
  bit-for-bit (the DP performs the same float64 operations on the same
  integer-valued cells, only stacked);
* an :data:`~repro.core.edr.EARLY_ABANDONED` entry proves the true
  distance exceeds that candidate's bound, exactly like the scalar
  kernel's sentinel — so exact k-NN and range engines may substitute
  ``edr_many`` for a loop of ``edr`` calls without changing any answer;
* the optional Sakoe-Chiba ``band`` gives values identical to the scalar
  kernel's (the band constraint is symmetric, so the fixed
  query-as-rows orientation used here cannot change it).

Padding soundness: padded columns sit to the *right* of every real
column and the DP only propagates down and rightward, so they can never
influence a real cell; the abandonment test masks them out so a padded
cell can never keep a dead candidate alive.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

import numpy as np

from .edr import EARLY_ABANDONED, _points
from .trajectory import Trajectory

__all__ = [
    "edr_many",
    "edr_many_bucketed",
    "iter_length_buckets",
    "DEFAULT_REFINE_BATCH_SIZE",
]

# Default candidate-batch size for the engines' refinement loops: large
# enough to amortize the per-row Python overhead across the batch, small
# enough that the k-th-best bound still tightens between batches.
DEFAULT_REFINE_BATCH_SIZE = 64

TrajectoryLike = Union[Trajectory, np.ndarray, Sequence]


def edr_many(
    query: TrajectoryLike,
    candidates: Sequence[TrajectoryLike],
    epsilon: float,
    bounds: Optional[Union[float, Sequence[float], np.ndarray]] = None,
    band: Optional[int] = None,
) -> np.ndarray:
    """``EDR(query, candidate)`` for every candidate, in one batched DP.

    Parameters
    ----------
    query:
        The common query trajectory (or raw point array).
    candidates:
        The trajectories to verify.  Lengths and point counts may vary
        freely; callers wanting to limit padding waste should group
        similar lengths per call (:func:`iter_length_buckets`).
    epsilon:
        Matching threshold of Definition 1.  Must be non-negative.
    bounds:
        Optional early-abandoning bound(s): a scalar applied to every
        candidate or one value per candidate.  A candidate whose DP row
        minimum exceeds its bound is provably farther than the bound and
        its result becomes :data:`~repro.core.edr.EARLY_ABANDONED`; the
        batch then compacts to the survivors.
    band:
        Optional Sakoe-Chiba band half-width, as in the scalar kernel.

    Returns
    -------
    numpy.ndarray
        ``float64`` array of ``len(candidates)`` entries: the exact EDR,
        or infinity for abandoned candidates.
    """
    if epsilon < 0.0:
        raise ValueError("matching threshold epsilon must be non-negative")
    if band is not None and band < 0:
        raise ValueError("band half-width must be non-negative")
    query_points = _points(query)
    m = len(query_points)
    count = len(candidates)
    results = np.empty(count, dtype=np.float64)
    if count == 0:
        return results
    points = [_points(candidate) for candidate in candidates]
    lengths = np.array([len(p) for p in points], dtype=np.int64)

    bounds_array: Optional[np.ndarray] = None
    if bounds is not None:
        bounds_array = np.ascontiguousarray(
            np.broadcast_to(np.asarray(bounds, dtype=np.float64), (count,))
        )

    # Empty-trajectory rules come before everything else, exactly like
    # the scalar kernel: EDR against an empty sequence is the other
    # sequence's length, with no band or bound consulted.
    if m == 0:
        results[:] = lengths
        return results

    active_list = []
    for position, candidate_points in enumerate(points):
        n = len(candidate_points)
        if n == 0:
            results[position] = float(m)
            continue
        if candidate_points.shape[1] != query_points.shape[1]:
            raise ValueError("trajectories must have the same spatial arity")
        if band is not None and abs(m - n) > band:
            results[position] = EARLY_ABANDONED
            continue
        active_list.append(position)
    if not active_list:
        return results

    active = np.array(active_list, dtype=np.int64)
    active_lengths = lengths[active]
    width = int(active_lengths.max())
    dims = query_points.shape[1]

    # Candidates padded to the shared width with +inf points: an inf
    # coordinate can never epsilon-match, so padded elements always cost
    # a full edit — and, sitting right of every real column, never
    # influence a real cell anyway.
    padded = np.full((active.size, width, dims), np.inf, dtype=np.float64)
    for row, position in enumerate(active):
        candidate_points = points[position]
        padded[row, : len(candidate_points)] = candidate_points

    indices = np.arange(width + 1, dtype=np.float64)
    column_numbers = np.arange(width + 1, dtype=np.int64)
    previous = np.tile(indices, (active.size, 1))  # D[0, j] = j, per candidate
    use_bounds = bounds_array is not None
    active_bounds = bounds_array[active] if use_bounds else None

    for i in range(1, m + 1):
        element = query_points[i - 1]
        # match row for the whole batch: Chebyshev test per axis, with
        # the same early-exit idea as match_matrix for higher arities.
        matches = np.abs(padded[:, :, 0] - element[0]) <= epsilon
        for axis in range(1, dims):
            if not matches.any():
                break
            matches &= np.abs(padded[:, :, axis] - element[axis]) <= epsilon
        subcost = np.where(matches, 0.0, 1.0)

        tentative = np.empty((active.size, width + 1), dtype=np.float64)
        tentative[:, 0] = float(i)  # D[i, 0] = i (delete the first i elements)
        np.minimum(
            previous[:, 1:] + 1.0,
            previous[:, :-1] + subcost,
            out=tentative[:, 1:],
        )
        if band is not None:
            low = i - band
            high = i + band
            if low > 1:
                tentative[:, 1:low] = np.inf
            if high < width:
                tentative[:, high + 1 :] = np.inf
            if low > 0:
                tentative[:, 0] = np.inf
        if use_bounds:
            # Row minimum over *real* columns only: a padded cell may sit
            # below the candidate's true row minimum and must not keep it
            # alive.  Every DP path to the final cell crosses each row,
            # and step costs are non-negative, so row-min > bound proves
            # the final distance exceeds the bound.  The test runs on
            # ``tentative`` — before the left-propagation running-min
            # pass — which is exact because that pass can only reproduce
            # or raise the row's prefix minimum (``current[j]`` is
            # ``min_{k<=j} tentative[k] + (j - k)`` and real columns form
            # a prefix), so masked minima agree and the abandonment
            # pattern is unchanged.  Testing first means a batch that
            # fully dies skips the propagation pass outright, and one
            # that shrinks propagates only the survivors.
            masked = np.where(
                column_numbers[None, :] <= active_lengths[:, None],
                tentative,
                np.inf,
            )
            alive = masked.min(axis=1) <= active_bounds
            if not alive.all():
                results[active[~alive]] = EARLY_ABANDONED
                if not alive.any():
                    return results
                # Active-set compaction: the batch physically shrinks.
                active = active[alive]
                active_lengths = active_lengths[alive]
                tentative = tentative[alive]
                padded = padded[alive]
                active_bounds = active_bounds[alive]
                new_width = int(active_lengths.max())
                if new_width < width:
                    width = new_width
                    tentative = np.ascontiguousarray(tentative[:, : width + 1])
                    padded = np.ascontiguousarray(padded[:, :width])
                    indices = indices[: width + 1]
                    column_numbers = column_numbers[: width + 1]
        current = indices + np.minimum.accumulate(tentative - indices, axis=1)
        if band is not None:
            # Re-mask so right-propagation cannot escape the band (see
            # the scalar kernel for why this is exact).
            low = i - band
            high = i + band
            if low > 1:
                current[:, 1:low] = np.inf
            if high < width:
                current[:, high + 1 :] = np.inf
            if low > 0:
                current[:, 0] = np.inf
        previous = current

    results[active] = previous[np.arange(active.size), active_lengths]
    return results


def iter_length_buckets(
    lengths: Union[Sequence[int], np.ndarray],
    batch_size: Optional[int] = None,
) -> Iterator[np.ndarray]:
    """Yield position batches grouped by trajectory length.

    Positions (indices into ``lengths``) come out sorted by length and
    sliced into batches of at most ``batch_size``, so each batch pads
    its members to a width close to their own lengths instead of the
    global maximum.  ``batch_size`` of ``None`` (or a non-positive
    value) yields one batch per distinct length neighbourhood — i.e. a
    single sorted batch.
    """
    order = np.argsort(np.asarray(lengths, dtype=np.int64), kind="stable")
    if order.size == 0:
        return
    if batch_size is None or batch_size <= 0:
        batch_size = int(order.size)
    for start in range(0, order.size, batch_size):
        yield order[start : start + batch_size]


def edr_many_bucketed(
    query: TrajectoryLike,
    candidates: Sequence[TrajectoryLike],
    epsilon: float,
    bounds: Optional[Union[float, Sequence[float], np.ndarray]] = None,
    band: Optional[int] = None,
    batch_size: Optional[int] = DEFAULT_REFINE_BATCH_SIZE,
    kernel: Optional[str] = None,
) -> np.ndarray:
    """:func:`edr_many` over length-bucketed batches, results in order.

    Convenience driver for bulk pairwise work (distance matrices,
    reference-column precompute) where all candidates are known up
    front: candidates are grouped by length to limit padding waste, and
    the scattered results come back in the original candidate order.

    ``kernel`` picks the batch kernel by name (see
    :mod:`repro.core.kernels`); ``None`` or ``"batched"`` keeps
    :func:`edr_many`.  Every kernel returns identical results.
    """
    count = len(candidates)
    results = np.empty(count, dtype=np.float64)
    if count == 0:
        return results
    if kernel is None or kernel == "batched":
        batch_kernel = edr_many
    else:
        from .kernels import run_kernel
        from functools import partial

        batch_kernel = partial(run_kernel, kernel)
    lengths = [len(_points(candidate)) for candidate in candidates]
    bounds_array: Optional[np.ndarray] = None
    if bounds is not None:
        bounds_array = np.ascontiguousarray(
            np.broadcast_to(np.asarray(bounds, dtype=np.float64), (count,))
        )
    for bucket in iter_length_buckets(lengths, batch_size):
        bucket_bounds = bounds_array[bucket] if bounds_array is not None else None
        results[bucket] = batch_kernel(
            query,
            [candidates[int(position)] for position in bucket],
            epsilon,
            bounds=bucket_bounds,
            band=band,
        )
    return results
