"""The paper's primary contribution: EDR and its exact k-NN pruning framework."""

from .database import TrajectoryDatabase
from .edr import edr, edr_matrix, edr_reference
from .edr_batch import edr_many, edr_many_bucketed, iter_length_buckets
from .histogram import HistogramSpace, histogram_distance
from .matching import elements_match, match_matrix, suggest_epsilon
from .alignment import EditOperation, edr_alignment, subtrajectory_edr
from .cse import CseReport, analyze_cse, cse_constant
from .join import JoinPair, JoinStats, similarity_join
from .lcss_search import (
    LcssHistogramBound,
    LcssQgramBound,
    knn_lcss_scan,
    knn_lcss_search,
)
from .neartriangle import NearTrianglePruner, near_triangle_lower_bound
from .rangequery import range_scan, range_search
from .qgram import (
    can_prune_by_qgrams,
    common_qgram_lower_bound,
    count_common_qgrams,
    mean_value_qgrams,
    qgram_windows,
)
from .trajectory import Trajectory

__all__ = [
    "Trajectory",
    "EditOperation",
    "edr_alignment",
    "subtrajectory_edr",
    "CseReport",
    "analyze_cse",
    "cse_constant",
    "JoinPair",
    "JoinStats",
    "similarity_join",
    "TrajectoryDatabase",
    "edr",
    "edr_many",
    "edr_many_bucketed",
    "edr_matrix",
    "edr_reference",
    "iter_length_buckets",
    "HistogramSpace",
    "histogram_distance",
    "elements_match",
    "match_matrix",
    "suggest_epsilon",
    "LcssHistogramBound",
    "LcssQgramBound",
    "knn_lcss_scan",
    "knn_lcss_search",
    "range_scan",
    "range_search",
    "NearTrianglePruner",
    "near_triangle_lower_bound",
    "can_prune_by_qgrams",
    "common_qgram_lower_bound",
    "count_common_qgrams",
    "mean_value_qgrams",
    "qgram_windows",
]
