"""Trajectory model for moving-object similarity search.

A trajectory is a sequence of sampled positions of a moving object,
``S = [(t_1, s_1), ..., (t_n, s_n)]`` where each ``s_i`` is a d-dimensional
vector (d is usually 2 or 3).  For similarity-based retrieval the paper
ignores the time component and works with the sequence of sampled vectors
only, so :class:`Trajectory` stores the positions as an ``(n, d)`` float
array and keeps the timestamps as optional metadata.

The paper (Section 2) recommends normalizing each coordinate axis by its
mean and standard deviation so that distances are invariant to spatial
scaling and shifting; :meth:`Trajectory.normalized` implements this.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Trajectory"]


ArrayLike = Union[np.ndarray, Sequence[Sequence[float]], Sequence[float]]


def _as_points(points: ArrayLike) -> np.ndarray:
    """Coerce input into a float64 ``(n, d)`` array.

    One-dimensional input of n scalars becomes an ``(n, 1)`` array so that
    one-dimensional time series (used in several of the paper's worked
    examples) are first-class trajectories.
    """
    array = np.asarray(points, dtype=np.float64)
    if array.ndim == 0:
        raise ValueError("a trajectory needs at least a sequence of points")
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise ValueError(
            f"trajectory points must be an (n, d) array, got shape {array.shape}"
        )
    if not np.all(np.isfinite(array)):
        raise ValueError("trajectory points must be finite numbers")
    return array


class Trajectory:
    """An immutable sequence of d-dimensional sampled positions.

    Parameters
    ----------
    points:
        ``(n, d)`` array-like of sampled positions.  A flat sequence of n
        scalars is treated as a one-dimensional trajectory of length n.
    timestamps:
        Optional length-n sequence of sample times.  Timestamps play no
        role in any distance computation (the paper discards them for
        similarity search) but are preserved for provenance and I/O.
    label:
        Optional class label, used by the clustering / classification
        efficacy experiments (Tables 1 and 2).
    trajectory_id:
        Optional stable identifier used by search engines and indexes.
    """

    __slots__ = ("_points", "_timestamps", "label", "trajectory_id")

    def __init__(
        self,
        points: ArrayLike,
        timestamps: Optional[Sequence[float]] = None,
        label: Optional[str] = None,
        trajectory_id: Optional[int] = None,
    ) -> None:
        self._points = _as_points(points)
        self._points.setflags(write=False)
        if timestamps is not None:
            stamps = np.asarray(timestamps, dtype=np.float64)
            if stamps.shape != (len(self._points),):
                raise ValueError(
                    "timestamps must be a flat sequence with one entry per point"
                )
            stamps.setflags(write=False)
            self._timestamps = stamps
        else:
            self._timestamps = None
        self.label = label
        self.trajectory_id = trajectory_id

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def points(self) -> np.ndarray:
        """The ``(n, d)`` read-only array of sampled positions."""
        return self._points

    @property
    def timestamps(self) -> Optional[np.ndarray]:
        """Sample times, or ``None`` when the source had no time column."""
        return self._timestamps

    @property
    def ndim(self) -> int:
        """Spatial arity d of each sampled vector (2 for x-y trajectories)."""
        return self._points.shape[1]

    def __len__(self) -> int:
        return self._points.shape[0]

    def __getitem__(self, index):
        return self._points[index]

    def __iter__(self) -> Iterable[np.ndarray]:
        return iter(self._points)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trajectory):
            return NotImplemented
        return (
            self._points.shape == other._points.shape
            and bool(np.array_equal(self._points, other._points))
        )

    def __hash__(self) -> int:
        return hash((self._points.shape, self._points.tobytes()))

    def __repr__(self) -> str:
        parts = [f"n={len(self)}", f"d={self.ndim}"]
        if self.label is not None:
            parts.append(f"label={self.label!r}")
        if self.trajectory_id is not None:
            parts.append(f"id={self.trajectory_id}")
        return f"Trajectory({', '.join(parts)})"

    # ------------------------------------------------------------------
    # Derived trajectories
    # ------------------------------------------------------------------
    def normalized(self) -> "Trajectory":
        """Return the axis-wise z-normalized trajectory (paper Section 2).

        Each coordinate axis is shifted by its mean and scaled by its
        standard deviation: ``Norm(S)_i = (s_i - mu) / sigma``.  An axis
        with zero variance is left centred at zero rather than divided by
        zero.  Normalization makes every distance in this library invariant
        to spatial scaling and shifting of the raw data.
        """
        mean = self._points.mean(axis=0)
        std = self._points.std(axis=0)
        safe_std = np.where(std > 0.0, std, 1.0)
        return self.with_points((self._points - mean) / safe_std)

    def with_points(self, points: ArrayLike) -> "Trajectory":
        """Build a trajectory with new points but this one's metadata."""
        stamps = None
        new_points = _as_points(points)
        if self._timestamps is not None and len(new_points) == len(self):
            stamps = self._timestamps
        return Trajectory(
            new_points,
            timestamps=stamps,
            label=self.label,
            trajectory_id=self.trajectory_id,
        )

    def rest(self) -> "Trajectory":
        """``Rest(S)``: the sub-trajectory without the first element.

        Provided for parity with the paper's recurrences; the dynamic
        programming implementations never materialize it.
        """
        if len(self) == 0:
            raise ValueError("Rest() of an empty trajectory is undefined")
        return self.with_points(self._points[1:])

    def projection(self, axis: int) -> "Trajectory":
        """The one-dimensional data sequence of a single coordinate axis.

        Used by the 1-D Q-gram (Theorem 4) and 1-D histogram
        (Corollary 1) pruning variants.
        """
        if not 0 <= axis < self.ndim:
            raise IndexError(f"axis {axis} out of range for d={self.ndim}")
        return self.with_points(self._points[:, axis].reshape(-1, 1))

    def resampled(self, length: int) -> "Trajectory":
        """Linearly resample to ``length`` points along the path.

        The sliding-window Euclidean strategy needs equal lengths only in
        window comparisons, but resampling is a common preprocessing step
        for other consumers of the library.
        """
        if length < 1:
            raise ValueError("resampled length must be positive")
        if len(self) == 0:
            raise ValueError("cannot resample an empty trajectory")
        if len(self) == 1:
            return self.with_points(np.repeat(self._points, length, axis=0))
        old_positions = np.linspace(0.0, 1.0, num=len(self))
        new_positions = np.linspace(0.0, 1.0, num=length)
        columns = [
            np.interp(new_positions, old_positions, self._points[:, axis])
            for axis in range(self.ndim)
        ]
        return self.with_points(np.column_stack(columns))

    # ------------------------------------------------------------------
    # Summary statistics used by pruning structures
    # ------------------------------------------------------------------
    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-axis ``(minimum, maximum)`` of the sampled positions."""
        if len(self) == 0:
            raise ValueError("bounds of an empty trajectory are undefined")
        return self._points.min(axis=0), self._points.max(axis=0)

    def max_std(self) -> float:
        """The maximum per-axis standard deviation.

        The paper sets the matching threshold ε to a quarter of the
        maximum standard deviation of the trajectories under comparison.
        """
        return float(self._points.std(axis=0).max())
