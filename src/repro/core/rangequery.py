"""Range queries under EDR: all trajectories within a distance threshold.

The Q-gram count filter (Theorem 1) was originally a *range query*
technique — "retrieve all strings within k edit operations" — before the
paper extended it to k-NN.  This module provides that original form for
all three pruning methods: given a query trajectory and a radius k,
return every database trajectory S with ``EDR(Q, S) <= k``.

Range pruning is simpler than k-NN pruning because the threshold is
fixed up front: a candidate is skipped as soon as any lower bound
exceeds the radius, and the near-triangle pruner can also use computed
distances *both* ways (a very close S proves nothing, but Theorem 5
still eliminates far candidates).
"""

from __future__ import annotations

import time
from typing import List, Sequence

import numpy as np

from .database import TrajectoryDatabase
from .edr_batch import DEFAULT_REFINE_BATCH_SIZE
from .kernels import length_bucket, resolve_kernel_plan, run_kernel, scalar_kernel
from .search import (
    Neighbor,
    Pruner,
    SearchStats,
    _PendingBatches,
    _normalized_batch_size,
    _prunes_candidate,
    _quick_bound_arrays,
)
from .trajectory import Trajectory

__all__ = ["range_scan", "range_search"]


def range_scan(
    database: TrajectoryDatabase,
    query: Trajectory,
    radius: float,
    edr_kernel: "str | None" = None,
) -> "tuple[List[Neighbor], SearchStats]":
    """Sequential-scan range query: the pruning-free baseline."""
    if radius < 0.0:
        raise ValueError("radius must be non-negative")
    start = time.perf_counter()
    stats = SearchStats(database_size=len(database))
    plan = resolve_kernel_plan(database, edr_kernel)
    stats.kernel = plan.requested
    results: List[Neighbor] = []
    for index in range(len(database)):
        stats.true_distance_computations += 1
        candidate = database.trajectories[index]
        kernel_fn = scalar_kernel(plan.kernel_for_length(len(candidate)))
        distance = kernel_fn(query, candidate, database.epsilon)
        if distance <= radius:
            results.append(Neighbor(index, distance))
    stats.elapsed_seconds = time.perf_counter() - start
    return results, stats


def range_search(
    database: TrajectoryDatabase,
    query: Trajectory,
    radius: float,
    pruners: Sequence[Pruner],
    early_abandon: bool = False,
    refine_batch_size: "int | None" = DEFAULT_REFINE_BATCH_SIZE,
    edr_kernel: "str | None" = None,
) -> "tuple[List[Neighbor], SearchStats]":
    """Range query with a chain of pruners; scan-identical answers.

    Every pruner's ``lower_bound`` is compared against the fixed radius:
    ``lower_bound > radius`` proves ``EDR > radius``, so the candidate
    cannot qualify.  With ``early_abandon=True`` the EDR computation
    itself stops once the radius is unreachable (the partial computation
    still counts as a true-distance computation in the stats).

    Static pruners are evaluated through their bulk quick-bound kernels
    (one vectorized pass per pruner, computed up front since the radius
    is fixed); dynamic pruners keep the scalar per-candidate path so the
    bounds reflect distances recorded earlier in this same query.

    ``refine_batch_size`` batches the verification of surviving
    candidates through the batched EDR kernel in length-bucketed groups
    (the radius is a fixed threshold, so batching loses nothing to
    bound staleness here).  ``None`` restores the scalar path.

    ``edr_kernel`` selects the refine kernel exactly as in
    :func:`repro.core.search.knn_search`; answers are byte-identical
    for every choice.
    """
    if radius < 0.0:
        raise ValueError("radius must be non-negative")
    start = time.perf_counter()
    stats = SearchStats(database_size=len(database))
    plan = resolve_kernel_plan(database, edr_kernel)
    stats.kernel = plan.requested
    query_pruners = [pruner.for_query(query) for pruner in pruners]
    quick_arrays = _quick_bound_arrays(query_pruners)
    results: List[Neighbor] = []
    batch_size = _normalized_batch_size(refine_batch_size)
    pending = _PendingBatches(batch_size) if batch_size is not None else None

    def verify_batch(candidate_indices: List[int]) -> None:
        bound = radius if early_abandon else None
        bucket = length_bucket(int(database.lengths[candidate_indices[0]]))
        kernel = plan.kernel_for_bucket(bucket)
        stats.kernel_buckets[str(bucket)] = kernel
        candidates = [database.trajectories[i] for i in candidate_indices]
        kernel_start = time.perf_counter()
        distances = run_kernel(
            kernel, query, candidates, database.epsilon, bounds=bound
        )
        stats.note_kernel(
            kernel,
            len(query) * int(sum(len(c) for c in candidates)),
            time.perf_counter() - kernel_start,
        )
        stats.true_distance_computations += len(candidate_indices)
        for candidate_index, distance in zip(candidate_indices, distances):
            distance = float(distance)
            if np.isfinite(distance):
                for query_pruner in query_pruners:
                    query_pruner.record(candidate_index, distance)
                if distance <= radius:
                    results.append(Neighbor(candidate_index, distance))

    for index in range(len(database)):
        pruned = False
        for query_pruner, quick_array in zip(query_pruners, quick_arrays):
            if _prunes_candidate(query_pruner, quick_array, index, radius):
                stats.credit(query_pruner.name)
                pruned = True
                break
        if pruned:
            continue
        if pending is None:
            stats.true_distance_computations += 1
            bound = radius if early_abandon else None
            candidate = database.trajectories[index]
            kernel_fn = scalar_kernel(plan.kernel_for_length(len(candidate)))
            distance = kernel_fn(
                query, candidate, database.epsilon, bound=bound
            )
            if np.isfinite(distance):
                for query_pruner in query_pruners:
                    query_pruner.record(index, distance)
                if distance <= radius:
                    results.append(Neighbor(index, distance))
            continue
        full_bucket = pending.add(index, int(database.lengths[index]))
        if full_bucket is not None:
            verify_batch(full_bucket)
    if pending is not None:
        for bucket in pending.drain():
            verify_batch(bucket)
        # Batches flush out of database order; restore the scalar
        # path's index-ordered result list.
        results.sort(key=lambda neighbor: neighbor.index)
    stats.elapsed_seconds = time.perf_counter() - start
    return results, stats
