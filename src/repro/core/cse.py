"""Constant Shift Embedding analysis — the paper's Section 4.2 negative result.

CSE ([30]) converts a non-metric distance ``dist`` into a metric
``dist'(x, y) = dist(x, y) + c`` for a large enough constant ``c``; the
paper considers it as an alternative to near-triangle pruning and
rejects it for two reasons:

1. the required ``c`` (derived from the smallest eigenvalue of the
   centred pairwise distance matrix) is so large that the triangle lower
   bound ``dist(x, z) - dist(y, z) - c`` becomes useless, and
2. ``c`` is derived from the database only, so query-to-database
   distances may still violate the shifted triangle inequality.

This module makes that argument reproducible: it computes the CSE
constant for a trajectory database, the fraction of triangles the raw
EDR violates, and the pruning potential of the CSE-shifted bound — the
numbers behind the paper's "very few distance computations can be
saved".
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Optional, Sequence

import numpy as np

from .edr import edr_matrix
from .trajectory import Trajectory

__all__ = ["CseReport", "cse_constant", "analyze_cse"]


def cse_constant(distance_matrix: np.ndarray) -> float:
    """The CSE shift constant for a pairwise distance matrix.

    Following [30]: with ``D`` the pairwise matrix and
    ``S = -0.5 * J D J`` its centred similarity form (J the centring
    matrix), the minimum shift making the space embeddable (and the
    shifted distance metric) is twice the magnitude of the smallest
    negative eigenvalue of ``S``.  A matrix that is already metric and
    embeddable yields zero.
    """
    matrix = np.asarray(distance_matrix, dtype=np.float64)
    count = len(matrix)
    if matrix.shape != (count, count):
        raise ValueError("distance matrix must be square")
    centering = np.eye(count) - np.full((count, count), 1.0 / count)
    similarity = -0.5 * centering @ matrix @ centering
    smallest = float(np.linalg.eigvalsh(similarity)[0])
    return max(0.0, -2.0 * smallest)


@dataclass
class CseReport:
    """Outcome of the Section 4.2 analysis on one database sample."""

    sample_size: int
    constant: float
    mean_distance: float
    triangle_violation_rate: float
    raw_prunable_rate: float
    shifted_prunable_rate: float

    def summary(self) -> str:
        return (
            f"CSE constant c = {self.constant:.1f} "
            f"(mean EDR = {self.mean_distance:.1f}); "
            f"raw triangle violations: {self.triangle_violation_rate:.1%}; "
            f"usable triangle bounds raw/shifted: "
            f"{self.raw_prunable_rate:.1%} / {self.shifted_prunable_rate:.1%}"
        )


def analyze_cse(
    trajectories: Sequence[Trajectory],
    epsilon: float,
    sample_size: Optional[int] = 60,
    threshold_quantile: float = 0.25,
    seed: int = 0,
) -> CseReport:
    """Quantify how (un)helpful CSE-shifted triangle pruning would be.

    For a sample of the database, computes for every ordered triangle
    ``(x, y, z)`` the raw lower bound ``D(x,z) - D(y,z)`` and the
    CSE-shifted bound ``D(x,z) - D(y,z) - c``; a bound is *usable* when
    it exceeds the ``threshold_quantile`` of the pairwise distances
    (standing in for a typical k-NN ``bestSoFar``).  The paper's
    finding is that the shifted usable rate collapses to ~zero because
    ``c`` dwarfs the distances themselves.
    """
    trajectories = list(trajectories)
    if sample_size is not None and len(trajectories) > sample_size:
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(trajectories), size=sample_size, replace=False)
        trajectories = [trajectories[int(i)] for i in chosen]
    count = len(trajectories)
    if count < 3:
        raise ValueError("need at least three trajectories for triangles")
    matrix = edr_matrix(trajectories, epsilon)
    constant = cse_constant(matrix)
    upper = np.triu_indices(count, k=1)
    pairwise = matrix[upper]
    threshold = float(np.quantile(pairwise, threshold_quantile))

    violations = 0
    raw_usable = 0
    shifted_usable = 0
    triangles = 0
    for x, y, z in combinations(range(count), 3):
        for a, b, via in ((x, z, y), (x, y, z), (y, z, x)):
            triangles += 1
            direct = matrix[a, b]
            detour = matrix[a, via] + matrix[via, b]
            if detour < direct:
                violations += 1
            raw_bound = matrix[a, via] - matrix[via, b]
            if raw_bound > threshold:
                raw_usable += 1
            if raw_bound - constant > threshold:
                shifted_usable += 1
    return CseReport(
        sample_size=count,
        constant=constant,
        mean_distance=float(pairwise.mean()),
        triangle_violation_rate=violations / triangles,
        raw_prunable_rate=raw_usable / triangles,
        shifted_prunable_rate=shifted_usable / triangles,
    )
