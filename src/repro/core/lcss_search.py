"""Pruned k-NN search under LCSS — the paper's claimed extension.

Section 4 of the paper notes that "the pruning techniques that we
propose ... can also be applied to LCSS, the details are omitted due to
space limitation."  This module supplies those details.

LCSS is a *similarity* (higher is better), so a k-NN query asks for the
k candidates with the **largest** LCSS score, and pruning needs sound
**upper** bounds:

* **Histogram bound** — every ε-matching element pair lies in the same
  or adjacent histogram bins, so the maximum flow between the two full
  histograms along approximately-matching bins
  (:func:`repro.core.histogram.histogram_match_capacity`) upper-bounds
  the number of matchable pairs, hence LCSS.
* **Q-gram bound** — Theorem 1 lower-bounds EDR from the common Q-gram
  count: ``EDR >= (max(m,n) - q + 1 - common) / q``; combined with the
  coupling ``EDR <= m + n - 2*LCSS`` (delete the unmatched elements of
  both trajectories) this yields
  ``LCSS <= (m + n - max(0, (max(m,n) - q + 1 - common) / q)) / 2``.
* **Trivial bound** — ``LCSS <= min(m, n)``, applied for free.

A candidate is skipped when its upper bound is strictly below the
current k-th best score; answers are always scan-identical (the same
no-false-dismissal guarantee the EDR engines have).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..distances.lcss import lcss
from ..index.mergejoin import (
    count_common_sorted_2d,
    sort_means_2d,
)
from .database import TrajectoryDatabase
from .histogram import histogram_match_capacity
from .qgram import mean_value_qgrams
from .search import SearchStats
from .trajectory import Trajectory

__all__ = [
    "LcssMatch",
    "LcssHistogramBound",
    "LcssQgramBound",
    "knn_lcss_scan",
    "knn_lcss_search",
]


@dataclass(frozen=True)
class LcssMatch:
    """One LCSS k-NN answer: database index and its LCSS score."""

    index: int
    score: float


class LcssUpperBound:
    """Interface: per-query state exposing ``upper_bound(candidate_index)``."""

    name: str = "base"

    def for_query(self, query: Trajectory) -> "LcssUpperBound":
        raise NotImplementedError

    def upper_bound(self, candidate_index: int) -> float:
        raise NotImplementedError


class LcssHistogramBound(LcssUpperBound):
    """LCSS <= max matchable mass between the two trajectory histograms."""

    def __init__(self, database: TrajectoryDatabase, delta: float = 1.0) -> None:
        self._database = database
        self.name = f"lcss-histogram(delta={delta:g})"
        self._space, self._histograms = database.histograms(delta=delta)
        self._query_histogram = None

    def for_query(self, query: Trajectory) -> "LcssHistogramBound":
        bound = LcssHistogramBound.__new__(LcssHistogramBound)
        bound._database = self._database
        bound.name = self.name
        bound._space = self._space
        bound._histograms = self._histograms
        bound._query_histogram = self._space.histogram(query)
        return bound

    def upper_bound(self, candidate_index: int) -> float:
        return float(
            histogram_match_capacity(
                self._query_histogram, self._histograms[candidate_index]
            )
        )


class LcssQgramBound(LcssUpperBound):
    """LCSS <= (m + n - EDR-lower-bound) / 2 from the common Q-gram count."""

    def __init__(self, database: TrajectoryDatabase, q: int = 1) -> None:
        self._database = database
        self._q = q
        self.name = f"lcss-qgram(q={q})"
        self._candidates = database.sorted_qgram_means(q)
        self._query_sorted = None
        self._query_length = 0

    def for_query(self, query: Trajectory) -> "LcssQgramBound":
        bound = LcssQgramBound.__new__(LcssQgramBound)
        bound._database = self._database
        bound._q = self._q
        bound.name = self.name
        bound._candidates = self._candidates
        bound._query_sorted = sort_means_2d(mean_value_qgrams(query, self._q))
        bound._query_length = len(query)
        return bound

    def upper_bound(self, candidate_index: int) -> float:
        candidate = self._candidates[candidate_index]
        common = count_common_sorted_2d(
            self._query_sorted, candidate, self._database.epsilon
        )
        m = self._query_length
        n = int(self._database.lengths[candidate_index])
        edr_floor = max(0.0, (max(m, n) - self._q + 1 - common) / self._q)
        return (m + n - edr_floor) / 2.0


class _LcssResultList:
    """k best (index, score) by descending score."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self._items: List[LcssMatch] = []

    @property
    def worst_so_far(self) -> float:
        """The current k-th best score — -inf until k answers exist."""
        if len(self._items) < self.k:
            return float("-inf")
        return self._items[-1].score

    def offer(self, index: int, score: float) -> None:
        if len(self._items) >= self.k and score <= self.worst_so_far:
            return
        position = 0
        while position < len(self._items) and self._items[position].score >= score:
            position += 1
        self._items.insert(position, LcssMatch(index, score))
        del self._items[self.k :]

    def matches(self) -> List[LcssMatch]:
        return list(self._items)


def knn_lcss_scan(
    database: TrajectoryDatabase, query: Trajectory, k: int
) -> "tuple[List[LcssMatch], SearchStats]":
    """Sequential LCSS k-NN scan (most-similar-first), the baseline."""
    start = time.perf_counter()
    stats = SearchStats(database_size=len(database))
    result = _LcssResultList(k)
    for index in range(len(database)):
        stats.true_distance_computations += 1
        score = lcss(query, database.trajectories[index], database.epsilon)
        result.offer(index, score)
    stats.elapsed_seconds = time.perf_counter() - start
    return result.matches(), stats


def knn_lcss_search(
    database: TrajectoryDatabase,
    query: Trajectory,
    k: int,
    bounds: Sequence[LcssUpperBound],
) -> "tuple[List[LcssMatch], SearchStats]":
    """LCSS k-NN with upper-bound pruning; scan-identical answers.

    Prunes a candidate when any bound (including the free
    ``min(m, n)`` length bound) is strictly below the current k-th best
    score — a candidate that could only tie can never displace an
    incumbent, so strict comparison is safe and prunes more.
    """
    start = time.perf_counter()
    stats = SearchStats(database_size=len(database))
    result = _LcssResultList(k)
    query_bounds = [bound.for_query(query) for bound in bounds]
    query_length = len(query)
    for index in range(len(database)):
        worst = result.worst_so_far
        if np.isfinite(worst):
            length_bound = min(query_length, int(database.lengths[index]))
            if length_bound < worst:
                stats.credit("lcss-length")
                continue
            pruned = False
            for query_bound in query_bounds:
                if query_bound.upper_bound(index) < worst:
                    stats.credit(query_bound.name)
                    pruned = True
                    break
            if pruned:
                continue
        stats.true_distance_computations += 1
        score = lcss(query, database.trajectories[index], database.epsilon)
        result.offer(index, score)
    stats.elapsed_seconds = time.perf_counter() - start
    return result.matches(), stats
