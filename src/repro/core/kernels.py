"""Refine-phase kernel selection: dispatch, autotuning, and reporting.

The refine phase has three interchangeable EDR kernels — every one
returns byte-for-byte the same distances and the same early-abandon
sentinel pattern, so engines may swap them freely without changing
answers or pruner counters:

``scalar``
    One kernel invocation per candidate.  In batch context this runs the
    batched kernel on singleton batches (a candidate's abandonment
    schedule is independent of its batch mates, so a singleton batch is
    bit-identical to the same candidate inside any larger batch); on the
    unbatched path it is plain :func:`~repro.core.edr.edr`.
``batched``
    :func:`~repro.core.edr_batch.edr_many`, the padded row-DP over a
    whole candidate batch.  This is the legacy default: callers that do
    not opt in get exactly the pre-kernel-selection behavior.
``bitparallel``
    :func:`~repro.core.edr_bitparallel.edr_many_bitparallel`, the
    Myers/Hyyrö bit-vector kernel (64 DP cells per machine word).
    Banded calls delegate to ``batched`` internally, so the choice is
    moot under a Sakoe-Chiba band.

``auto`` resolves through a per-length-bucket autotune table: the
database races the kernels on small deterministic samples of its own
trajectories, one race per length bucket (buckets are the power-of-two
groups the refine phase already batches by), and caches the winner.
The table is stored on the database, serialized by ``save``/``load``,
and can be built eagerly at warm time.

Determinism: the trial schedule is fixed by a seed (sample membership
and order never depend on timing), ties break toward the legacy kernel,
and the ``REPRO_KERNEL_FORCE`` environment variable short-circuits every
choice — no wall clock is read at all on that path — so tests can pin a
kernel globally.  An injectable ``time_fn`` makes the autotuner itself
deterministic under test.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .edr import edr
from .edr_batch import edr_many
from .edr_bitparallel import edr_bitparallel, edr_many_bitparallel

__all__ = [
    "FORCE_ENV",
    "KERNEL_CHOICES",
    "LEGACY_KERNEL",
    "TIMED_KERNELS",
    "KernelPlan",
    "KernelSelection",
    "autotune_kernels",
    "kernel_report",
    "length_bucket",
    "resolve_kernel_plan",
    "run_kernel",
    "scalar_kernel",
]

#: Accepted values of every ``edr_kernel`` knob.
KERNEL_CHOICES = ("auto", "scalar", "batched", "bitparallel")

#: Kernels the autotuner races (everything but the meta-choice "auto").
TIMED_KERNELS = ("scalar", "batched", "bitparallel")

#: What ``edr_kernel=None`` means: the behavior before kernel selection
#: existed.  Internal callers default to this so nothing changes under
#: them; the CLI and the service default to "auto" instead.
LEGACY_KERNEL = "batched"

#: Environment override: set to a concrete kernel name to force it
#: everywhere, bypassing the autotuner (and any timing) entirely.
FORCE_ENV = "REPRO_KERNEL_FORCE"


def length_bucket(length: int) -> int:
    """The refine phase's length bucket key (power-of-two groups)."""
    return int(length).bit_length()


def _scalar_many(query, candidates, epsilon, bounds=None, band=None) -> np.ndarray:
    """Per-candidate dispatch with the batched kernel's exact semantics.

    Runs the batched row-DP on singleton batches so the early-abandon
    sentinel pattern matches ``edr_many`` bit for bit (scalar ``edr``
    swaps its DP orientation for short queries, which abandons at
    different rows — sound, but not counter-identical).
    """
    count = len(candidates)
    if bounds is None:
        bounds_list: List[Optional[float]] = [None] * count
    else:
        bounds_array = np.broadcast_to(
            np.asarray(bounds, dtype=np.float64).ravel(), (count,)
        )
        bounds_list = [float(value) for value in bounds_array]
    results = np.empty(count, dtype=np.float64)
    for position, candidate in enumerate(candidates):
        results[position] = edr_many(
            query, [candidate], epsilon, bounds=bounds_list[position], band=band
        )[0]
    return results


_KERNEL_FUNCTIONS: Dict[str, Callable] = {
    "scalar": _scalar_many,
    "batched": edr_many,
    "bitparallel": edr_many_bitparallel,
}


def run_kernel(
    kernel: str, query, candidates, epsilon, bounds=None, band=None
) -> np.ndarray:
    """Run one refine batch through the named kernel.

    All kernels return identical arrays (values and sentinels), so the
    name only selects *how* the batch is computed.
    """
    try:
        function = _KERNEL_FUNCTIONS[kernel]
    except KeyError:
        raise ValueError(
            f"unknown EDR kernel {kernel!r}; choose from {', '.join(TIMED_KERNELS)}"
        ) from None
    return function(query, candidates, epsilon, bounds=bounds, band=band)


def scalar_kernel(kernel: str) -> Callable:
    """The single-pair kernel for unbatched refine paths.

    ``bitparallel`` maps to :func:`edr_bitparallel` (bit-identical to
    ``edr``, sentinels included); every other choice is plain ``edr`` —
    there is nothing to batch on this path.
    """
    return edr_bitparallel if kernel == "bitparallel" else edr


@dataclass
class KernelSelection:
    """An autotuned (or loaded/forced) per-bucket kernel table."""

    table: Dict[int, str] = field(default_factory=dict)
    default: str = LEGACY_KERNEL
    throughput: Dict[str, float] = field(default_factory=dict)  # cells/second
    trials: int = 0
    source: str = "autotune"

    def kernel_for_bucket(self, bucket: int) -> str:
        return self.table.get(int(bucket), self.default)

    def to_dict(self) -> dict:
        return {
            "table": {str(bucket): kernel for bucket, kernel in sorted(self.table.items())},
            "default": self.default,
            "throughput": dict(self.throughput),
            "trials": self.trials,
            "source": self.source,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, payload: dict) -> "KernelSelection":
        return cls(
            table={int(bucket): str(kernel) for bucket, kernel in payload.get("table", {}).items()},
            default=str(payload.get("default", LEGACY_KERNEL)),
            throughput={str(k): float(v) for k, v in payload.get("throughput", {}).items()},
            trials=int(payload.get("trials", 0)),
            source=str(payload.get("source", "loaded")),
        )

    @classmethod
    def from_json(cls, text: str) -> "KernelSelection":
        return cls.from_dict(json.loads(text))


@dataclass
class KernelPlan:
    """A resolved kernel choice for one query (or one warm service)."""

    requested: str  # what the caller asked for ("auto", a fixed name, ...)
    source: str  # "fixed" | "forced" | "autotune" | "loaded"
    default: str = LEGACY_KERNEL
    table: Dict[int, str] = field(default_factory=dict)
    throughput: Dict[str, float] = field(default_factory=dict)

    def kernel_for_bucket(self, bucket: int) -> str:
        return self.table.get(int(bucket), self.default)

    def kernel_for_length(self, length: int) -> str:
        return self.kernel_for_bucket(length_bucket(length))


def forced_kernel() -> Optional[str]:
    """The ``REPRO_KERNEL_FORCE`` override, validated, or ``None``."""
    forced = os.environ.get(FORCE_ENV)
    if not forced:
        return None
    if forced not in TIMED_KERNELS:
        raise ValueError(
            f"{FORCE_ENV}={forced!r} is not a kernel; choose from {', '.join(TIMED_KERNELS)}"
        )
    return forced


def resolve_kernel_plan(database=None, kernel: Optional[str] = None) -> KernelPlan:
    """Resolve an ``edr_kernel`` knob into a concrete per-bucket plan.

    ``None`` means the legacy batched kernel (internal default — nothing
    changes for callers that never opted in).  ``"auto"`` consults the
    database's cached autotune table, running the autotuner on first use;
    without a database it degrades to the legacy kernel.  The
    ``REPRO_KERNEL_FORCE`` environment variable overrides everything,
    reading no clock at all.
    """
    forced = forced_kernel()
    if forced is not None:
        return KernelPlan(requested=kernel or forced, source="forced", default=forced)
    if kernel is None:
        kernel = LEGACY_KERNEL
    if kernel not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown EDR kernel {kernel!r}; choose from {', '.join(KERNEL_CHOICES)}"
        )
    if kernel != "auto":
        return KernelPlan(requested=kernel, source="fixed", default=kernel)
    if database is None:
        return KernelPlan(requested="auto", source="fixed", default=LEGACY_KERNEL)
    selection = database.kernel_selection()
    return KernelPlan(
        requested="auto",
        source=selection.source,
        default=selection.default,
        table=dict(selection.table),
        throughput=dict(selection.throughput),
    )


def autotune_kernels(
    database,
    trials: int = 3,
    sample: int = 8,
    kernels: Sequence[str] = TIMED_KERNELS,
    seed: int = 0,
    time_fn: Optional[Callable[[], float]] = None,
) -> KernelSelection:
    """Race the kernels per length bucket on the database's own data.

    For every length bucket present in the database, up to ``sample``
    member trajectories (chosen by a seeded shuffle — deterministic for
    a given database and seed, independent of timing) are refined
    against a representative query (the database trajectory of median
    length) by each candidate kernel, ``trials`` times; the best-of
    time decides the bucket, with ties broken toward the legacy kernel.
    ``time_fn`` defaults to ``time.perf_counter`` and is injectable so
    tests can drive the choice deterministically.
    """
    if trials < 1:
        raise ValueError("trials must be at least 1")
    if sample < 1:
        raise ValueError("sample must be at least 1")
    for kernel in kernels:
        if kernel not in TIMED_KERNELS:
            raise ValueError(f"cannot autotune meta-kernel {kernel!r}")
    clock = time.perf_counter if time_fn is None else time_fn
    rng = np.random.default_rng(seed)

    lengths = np.asarray(database.lengths, dtype=np.int64)
    # Representative query: the median-length trajectory (stable pick).
    median_order = np.argsort(lengths, kind="stable")
    query = database.trajectories[int(median_order[len(median_order) // 2])]

    buckets: Dict[int, List[int]] = {}
    for position, length in enumerate(lengths.tolist()):
        buckets.setdefault(length_bucket(length), []).append(position)

    # Tie-break preference: legacy first, so equal timings change nothing.
    preference = {"batched": 0, "bitparallel": 1, "scalar": 2}
    table: Dict[int, str] = {}
    cells_by_kernel: Dict[str, float] = {}
    seconds_by_kernel: Dict[str, float] = {}
    for bucket in sorted(buckets):
        members = buckets[bucket]
        if len(members) > sample:
            chosen = rng.choice(len(members), size=sample, replace=False)
            members = [members[int(index)] for index in np.sort(chosen)]
        candidates = [database.trajectories[index] for index in members]
        cells = len(query) * int(sum(len(c) for c in candidates))
        best_kernel = None
        best_key = None
        for kernel in kernels:
            elapsed = None
            for _ in range(trials):
                start = clock()
                run_kernel(kernel, query, candidates, database.epsilon)
                delta = clock() - start
                elapsed = delta if elapsed is None else min(elapsed, delta)
            cells_by_kernel[kernel] = cells_by_kernel.get(kernel, 0.0) + cells
            seconds_by_kernel[kernel] = seconds_by_kernel.get(kernel, 0.0) + max(
                elapsed, 0.0
            )
            key = (elapsed, preference.get(kernel, len(preference)))
            if best_key is None or key < best_key:
                best_key = key
                best_kernel = kernel
        table[bucket] = best_kernel

    throughput = {
        kernel: (cells_by_kernel[kernel] / seconds_by_kernel[kernel])
        if seconds_by_kernel.get(kernel, 0.0) > 0.0
        else 0.0
        for kernel in cells_by_kernel
    }
    # The plan default covers buckets never seen at tune time (queries
    # against trajectories longer than anything sampled): majority vote
    # over the tuned buckets, ties toward the legacy kernel.
    if table:
        votes: Dict[str, int] = {}
        for kernel in table.values():
            votes[kernel] = votes.get(kernel, 0) + 1
        default = min(
            votes, key=lambda kernel: (-votes[kernel], preference.get(kernel, 99))
        )
    else:
        default = LEGACY_KERNEL
    return KernelSelection(
        table=table,
        default=default,
        throughput=throughput,
        trials=trials,
        source="autotune",
    )


def kernel_report(database=None, kernel: Optional[str] = None) -> dict:
    """Debug/stats view of the kernel choice in force.

    Returns the resolved plan (requested choice, source, per-bucket
    table, default) plus the autotuner's measured per-kernel cell
    throughput when available.  Safe to call with no database — it then
    reports the fixed resolution.
    """
    plan = resolve_kernel_plan(database, kernel)
    return {
        "requested": plan.requested,
        "source": plan.source,
        "default": plan.default,
        "table": {str(bucket): name for bucket, name in sorted(plan.table.items())},
        "throughput_cells_per_s": {
            name: float(value) for name, value in sorted(plan.throughput.items())
        },
        "forced": os.environ.get(FORCE_ENV) or None,
        "choices": list(KERNEL_CHOICES),
    }
