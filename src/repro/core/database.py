"""Trajectory database with prebuilt pruning artifacts.

:class:`TrajectoryDatabase` owns a list of trajectories, a matching
threshold ε, and lazily-built, cached artifacts for each pruning method
of Section 4:

* sorted mean-value Q-grams (2-D pairs and per-axis 1-D projections),
* an R-tree over all 2-D Q-gram means and a B+-tree over 1-D means,
* trajectory histograms for any bin-size multiple δ·ε and per-axis 1-D
  histograms,
* near-triangle reference distance columns.

Everything is built once and shared across queries, which is how the
paper's speedup-ratio experiments are framed (index build time is
offline; query time is what is measured).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..index.bptree import BPlusTree
from ..index.mergejoin import flatten_sorted_means, sort_means_1d, sort_means_2d
from ..index.rtree import RTree
from .histogram import HistogramArrayStore, HistogramSpace, TrajectoryHistogram
from .neartriangle import build_reference_columns
from .qgram import mean_value_qgrams
from .trajectory import Trajectory

__all__ = ["TrajectoryDatabase"]


class TrajectoryDatabase:
    """A searchable collection of trajectories under one matching threshold.

    Parameters
    ----------
    trajectories:
        The database contents.  Normalization is the caller's choice (the
        paper normalizes before everything else); the database stores
        what it is given.
    epsilon:
        The matching threshold ε used by EDR and by every pruning
        artifact derived from it.
    """

    def __init__(self, trajectories: Sequence[Trajectory], epsilon: float) -> None:
        if epsilon < 0.0:
            raise ValueError("matching threshold epsilon must be non-negative")
        self.trajectories: List[Trajectory] = list(trajectories)
        if not self.trajectories:
            raise ValueError("a trajectory database cannot be empty")
        arities = {t.ndim for t in self.trajectories}
        if len(arities) != 1:
            raise ValueError(f"mixed trajectory arities in database: {arities}")
        self.ndim = arities.pop()
        self.epsilon = float(epsilon)
        self.lengths = np.array([len(t) for t in self.trajectories])

        self._sorted_means_2d: Dict[int, List[np.ndarray]] = {}
        self._sorted_means_1d: Dict[Tuple[int, int], List[np.ndarray]] = {}
        self._flat_means_2d: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._flat_means_1d: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
        self._rtrees: Dict[int, RTree] = {}
        self._bptrees: Dict[Tuple[int, int], BPlusTree] = {}
        self._histograms: Dict[
            Tuple[float, Optional[int]], Tuple[HistogramSpace, List[TrajectoryHistogram]]
        ] = {}
        self._histogram_arrays: Dict[Tuple[float, Optional[int]], HistogramArrayStore] = {}
        self._reference_columns: Dict[Tuple[int, str], Dict[int, np.ndarray]] = {}
        # One EDR column per reference index, shared by every
        # (max_references, policy) request that selects that reference,
        # so overlapping requests never recompute a column — and
        # reference-vs-reference pairs are filled in by symmetry.
        self._reference_column_store: Dict[int, np.ndarray] = {}
        # Autotuned refine-kernel table (kernels.KernelSelection); built
        # lazily by kernel_selection(), serialized with save()/load().
        self._kernel_selection = None

    @classmethod
    def _shell(
        cls,
        trajectories: Sequence[Trajectory],
        ndim: int,
        epsilon: float,
        lengths: np.ndarray,
    ) -> "TrajectoryDatabase":
        """A database shell around an externally-owned trajectory sequence.

        Used by the tiered storage layer (and the mmap-attached shard
        runtime) to wrap lazy, disk-backed trajectory lists without the
        constructor's eager full-corpus pass: ``trajectories`` may be any
        sequence supporting ``len`` and integer indexing.  All artifact
        caches start empty — the caller injects mmap-backed artifacts
        directly, and anything not injected builds lazily through the
        normal accessors (reading trajectories on demand).
        """
        database = cls.__new__(cls)
        database.trajectories = trajectories  # type: ignore[assignment]
        database.ndim = int(ndim)
        database.epsilon = float(epsilon)
        database.lengths = np.asarray(lengths)
        database._sorted_means_2d = {}
        database._sorted_means_1d = {}
        database._flat_means_2d = {}
        database._flat_means_1d = {}
        database._rtrees = {}
        database._bptrees = {}
        database._histograms = {}
        database._histogram_arrays = {}
        database._reference_columns = {}
        database._reference_column_store = {}
        database._kernel_selection = None
        return database

    def __len__(self) -> int:
        return len(self.trajectories)

    @property
    def max_length(self) -> int:
        return int(self.lengths.max())

    # ------------------------------------------------------------------
    # Q-gram artifacts
    # ------------------------------------------------------------------
    def sorted_qgram_means(self, q: int) -> List[np.ndarray]:
        """Per-trajectory mean value pairs sorted on axis 0 (PS2 input)."""
        if q not in self._sorted_means_2d:
            self._sorted_means_2d[q] = [
                sort_means_2d(mean_value_qgrams(t, q)) for t in self.trajectories
            ]
        return self._sorted_means_2d[q]

    def sorted_qgram_means_1d(self, q: int, axis: int = 0) -> List[np.ndarray]:
        """Per-trajectory single-axis Q-gram means, sorted (PS1 input)."""
        key = (q, axis)
        if key not in self._sorted_means_1d:
            self._sorted_means_1d[key] = [
                sort_means_1d(mean_value_qgrams(t.projection(axis), q))
                for t in self.trajectories
            ]
        return self._sorted_means_1d[key]

    def qgram_rtree(self, q: int) -> RTree:
        """R-tree over every 2-D Q-gram mean; payload = trajectory index (PR)."""
        if q not in self._rtrees:
            tree = RTree(ndim=self.ndim)
            for index, trajectory in enumerate(self.trajectories):
                for mean in mean_value_qgrams(trajectory, q):
                    tree.insert(mean, index)
            self._rtrees[q] = tree
        return self._rtrees[q]

    def qgram_bptree(self, q: int, axis: int = 0) -> BPlusTree:
        """B+-tree over single-axis Q-gram means; payload = trajectory index (PB)."""
        key = (q, axis)
        if key not in self._bptrees:
            tree = BPlusTree()
            for index, trajectory in enumerate(self.trajectories):
                means = mean_value_qgrams(trajectory.projection(axis), q)
                for mean in means.ravel():
                    tree.insert(float(mean), index)
            self._bptrees[key] = tree
        return self._bptrees[key]

    def qgram_count(self, trajectory_index: int, q: int) -> int:
        """Number of Q-grams (``n - q + 1``, floored at zero) of one trajectory."""
        return max(0, int(self.lengths[trajectory_index]) - q + 1)

    def flat_qgram_means(self, q: int) -> Tuple[np.ndarray, np.ndarray]:
        """All 2-D Q-gram means pooled and sorted, with owner trajectory ids.

        The bulk merge-join kernel runs one ``searchsorted`` pass over
        this pool instead of one per-candidate join per database member.
        """
        if q not in self._flat_means_2d:
            self._flat_means_2d[q] = flatten_sorted_means(self.sorted_qgram_means(q))
        return self._flat_means_2d[q]

    def flat_qgram_means_1d(self, q: int, axis: int = 0) -> Tuple[np.ndarray, np.ndarray]:
        """Single-axis pooled sorted Q-gram means with owner trajectory ids."""
        key = (q, axis)
        if key not in self._flat_means_1d:
            self._flat_means_1d[key] = flatten_sorted_means(
                self.sorted_qgram_means_1d(q, axis)
            )
        return self._flat_means_1d[key]

    # ------------------------------------------------------------------
    # Histogram artifacts
    # ------------------------------------------------------------------
    def histograms(
        self, delta: float = 1.0, axis: Optional[int] = None
    ) -> Tuple[HistogramSpace, List[TrajectoryHistogram]]:
        """Histogram space and per-trajectory histograms.

        ``delta`` scales the bin size to ``delta * epsilon`` (Theorem 7 /
        Corollary 1 require ``delta >= 1``); ``axis`` selects the 1-D
        per-axis variant of Corollary 1 (bin size stays ``delta * eps``).
        """
        if delta < 1.0:
            raise ValueError(
                "bin size below epsilon breaks the HD lower bound (Corollary 1)"
            )
        key = (float(delta), axis)
        if key not in self._histograms:
            bin_size = delta * self.epsilon
            if bin_size <= 0.0:
                raise ValueError("histograms need a positive epsilon")
            space = HistogramSpace.for_trajectories(
                self.trajectories, bin_size, axis=axis
            )
            built = [
                space.histogram(t if axis is None else t.projection(axis))
                for t in self.trajectories
            ]
            self._histograms[key] = (space, built)
        return self._histograms[key]

    def histogram_arrays(
        self, delta: float = 1.0, axis: Optional[int] = None
    ) -> HistogramArrayStore:
        """Array-backed (dense/CSR) histogram store for one variant.

        Built from the same per-trajectory histograms as
        :meth:`histograms`; used by the bulk quick-bound kernels.
        """
        key = (float(delta), axis)
        if key not in self._histogram_arrays:
            space, built = self.histograms(delta=delta, axis=axis)
            self._histogram_arrays[key] = HistogramArrayStore(
                built, 1 if axis is not None else self.ndim
            )
        return self._histogram_arrays[key]

    # ------------------------------------------------------------------
    # Near-triangle artifacts
    # ------------------------------------------------------------------
    def reference_columns(
        self,
        max_references: int = 400,
        policy: str = "first",
        workers: Optional[int] = None,
    ) -> Dict[int, np.ndarray]:
        """Precomputed EDR columns for ``max_references`` reference trajectories.

        ``policy`` selects which trajectories become references:

        * ``"first"`` — the first trajectories in database order, the
          paper's own selection;
        * ``"short"`` — the shortest trajectories.  Theorem 5's bound is
          capped at ``len(query) - len(reference)`` (because
          ``EDR(R, S) >= |R| - |S|``), so short references are the only
          ones that can ever produce a strong bound — an improvement the
          paper leaves as future work ("finding a smaller suitable
          value").

        ``workers`` (when greater than 1) parallelizes the precompute of
        any columns not already cached over a process pool; the columns
        themselves are identical either way.
        """
        count = min(max_references, len(self.trajectories))
        key = (count, policy)
        if key not in self._reference_columns:
            if policy == "first":
                indices = list(range(count))
            elif policy == "short":
                indices = [int(i) for i in np.argsort(self.lengths, kind="stable")[:count]]
            else:
                raise ValueError(f"unknown reference policy {policy!r}")
            self._reference_column_store.update(
                build_reference_columns(
                    self.trajectories,
                    self.epsilon,
                    reference_indices=indices,
                    workers=workers,
                    known_columns=self._reference_column_store,
                )
            )
            self._reference_columns[key] = {
                reference_index: self._reference_column_store[reference_index]
                for reference_index in indices
            }
        return self._reference_columns[key]

    # ------------------------------------------------------------------
    # Refine-kernel selection
    # ------------------------------------------------------------------
    def kernel_selection(self, trials: int = 3, sample: int = 8):
        """The autotuned per-length-bucket refine kernel table.

        Built on first use by racing the EDR kernels on deterministic
        samples of this database's own trajectories (see
        :func:`repro.core.kernels.autotune_kernels`), then cached —
        and serialized by :meth:`save` so a loaded database never pays
        the tuning cost again.  Every kernel returns byte-identical
        distances, so the table only affects throughput.
        """
        if self._kernel_selection is None:
            from .kernels import autotune_kernels

            self._kernel_selection = autotune_kernels(
                self, trials=trials, sample=sample
            )
        return self._kernel_selection

    # ------------------------------------------------------------------
    # Eager warm-up
    # ------------------------------------------------------------------
    def warm(
        self,
        q: Union[int, Iterable[int], None] = 1,
        histogram_bins: Union[float, Iterable[float], None] = 1.0,
        references: int = 0,
        *,
        per_axis: bool = True,
        trees: bool = False,
        reference_policy: str = "first",
        workers: Optional[int] = None,
        kernels: bool = False,
    ) -> Dict[str, float]:
        """Eagerly build the lazily-cached pruning artifacts, once, up front.

        Every artifact accessor on this class builds on first use, which
        is fine for a one-shot script but makes the first query of a
        long-lived process (a query server, a batch job) pay the full
        index cost.  ``warm`` forces construction ahead of time so that
        serving latency is flat from the first request onward.

        Parameters
        ----------
        q:
            Q-gram size(s) to prepare: sorted + pooled 2-D means, and —
            with ``per_axis=True`` — the 1-D per-axis variants.  ``None``
            skips Q-gram artifacts.
        histogram_bins:
            Bin-size multiple(s) δ (of ε, as in :meth:`histograms`) to
            prepare: the 2-D histograms and array stores, and — with
            ``per_axis=True`` — the per-axis variants.  ``None`` skips
            histogram artifacts.
        references:
            Number of near-triangle reference columns to precompute
            under ``reference_policy`` (0 skips them); ``workers``
            parallelizes the column precompute as in
            :meth:`reference_columns`.
        trees:
            Also build the R-tree / B+-trees over the Q-gram means (only
            the index-probe pruner needs them; the default merge-join
            pruner does not).
        kernels:
            Also run the refine-kernel autotuner (``auto`` kernel
            queries resolve against the cached table instead of tuning
            on the first query).

        Returns
        -------
        dict
            Build seconds per artifact name — already-cached artifacts
            cost (and report) effectively zero, so calling ``warm``
            twice is free.
        """
        report: Dict[str, float] = {}

        def timed(name: str, builder) -> None:
            start = time.perf_counter()
            builder()
            report[name] = time.perf_counter() - start

        q_values = [] if q is None else ([q] if isinstance(q, int) else list(q))
        for q_value in q_values:
            timed(f"qgram_means_2d(q={q_value})", lambda: self.flat_qgram_means(q_value))
            if per_axis:
                for axis in range(self.ndim):
                    timed(
                        f"qgram_means_1d(q={q_value}, axis={axis})",
                        lambda: self.flat_qgram_means_1d(q_value, axis),
                    )
            if trees:
                timed(f"qgram_rtree(q={q_value})", lambda: self.qgram_rtree(q_value))
                timed(f"qgram_bptree(q={q_value})", lambda: self.qgram_bptree(q_value))

        if histogram_bins is None:
            deltas: List[float] = []
        elif isinstance(histogram_bins, (int, float)):
            deltas = [float(histogram_bins)]
        else:
            deltas = [float(delta) for delta in histogram_bins]
        for delta in deltas:
            timed(
                f"histograms(delta={delta:g})",
                lambda: self.histogram_arrays(delta=delta),
            )
            if per_axis:
                for axis in range(self.ndim):
                    timed(
                        f"histograms(delta={delta:g}, axis={axis})",
                        lambda: self.histogram_arrays(delta=delta, axis=axis),
                    )

        if references > 0:
            timed(
                f"reference_columns({references}, {reference_policy})",
                lambda: self.reference_columns(
                    references, policy=reference_policy, workers=workers
                ),
            )
        if kernels:
            timed("kernel_selection", lambda: self.kernel_selection())
        return report

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Persist the database and its built pruning artifacts to ``.npz``.

        Saved: trajectories (points + labels), ε, sorted Q-gram means
        (2-D and 1-D, per built size), histograms (per built variant),
        and near-triangle reference columns.  The R-tree and B+-tree are
        *not* serialized — they rebuild from the trajectories in linear
        time and their layout carries no information beyond that.
        """
        arrays: Dict[str, np.ndarray] = {
            "epsilon": np.array(self.epsilon),
            "count": np.array(len(self.trajectories)),
        }
        labels = [t.label or "" for t in self.trajectories]
        arrays["labels"] = np.array(labels)
        for index, trajectory in enumerate(self.trajectories):
            arrays[f"points_{index}"] = trajectory.points

        manifest = {
            "means2d": sorted(self._sorted_means_2d),
            "means1d": sorted(self._sorted_means_1d),
            "histograms": sorted(
                (delta, axis if axis is not None else -1)
                for delta, axis in self._histograms
            ),
            "references": sorted(self._reference_columns),
            "kernels": (
                self._kernel_selection.to_dict()
                if self._kernel_selection is not None
                else None
            ),
        }
        arrays["manifest"] = np.array(json.dumps(manifest))

        for q, per_trajectory in self._sorted_means_2d.items():
            for index, means in enumerate(per_trajectory):
                arrays[f"m2d_{q}_{index}"] = means
        for (q, axis), per_trajectory in self._sorted_means_1d.items():
            for index, means in enumerate(per_trajectory):
                arrays[f"m1d_{q}_{axis}_{index}"] = means
        for (delta, axis), (space, histograms) in self._histograms.items():
            tag = f"{delta:g}_{-1 if axis is None else axis}"
            arrays[f"horigin_{tag}"] = space.origin
            arrays[f"hbin_{tag}"] = np.array(space.bin_size)
            for index, histogram in enumerate(histograms):
                keys = np.array(sorted(histogram), dtype=np.int64).reshape(
                    len(histogram), -1
                )
                counts = np.array(
                    [histogram[tuple(key)] for key in keys.tolist()],
                    dtype=np.int64,
                )
                arrays[f"hkeys_{tag}_{index}"] = keys
                arrays[f"hcounts_{tag}_{index}"] = counts
        for (count, policy), columns in self._reference_columns.items():
            tag = f"{count}_{policy}"
            arrays[f"refids_{tag}"] = np.array(sorted(columns), dtype=np.int64)
            for reference_index in sorted(columns):
                arrays[f"refcol_{tag}_{reference_index}"] = columns[reference_index]
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(
        cls, path: Union[str, Path], warm: bool = False
    ) -> "TrajectoryDatabase":
        """Load a database saved with :meth:`save`, artifacts included.

        With ``warm=True`` the *derived* artifacts the archive does not
        carry — pooled Q-gram mean arrays and array-backed histogram
        stores, which rebuild deterministically from the saved sorted
        means and histogram dicts — are materialized eagerly before
        returning, so a long-lived process (``serve`` cold-start) pays
        one load pass instead of lazy per-first-query builds.  The
        result is indistinguishable from building the same artifacts
        from scratch and warming them.
        """
        with np.load(path, allow_pickle=False) as archive:
            count = int(archive["count"])
            labels = [str(value) or None for value in archive["labels"]]
            trajectories = [
                Trajectory(
                    archive[f"points_{index}"],
                    label=labels[index] if labels[index] else None,
                    trajectory_id=index,
                )
                for index in range(count)
            ]
            database = cls(trajectories, float(archive["epsilon"]))
            manifest = json.loads(str(archive["manifest"]))
            for q in manifest["means2d"]:
                database._sorted_means_2d[q] = [
                    archive[f"m2d_{q}_{index}"] for index in range(count)
                ]
            for q, axis in manifest["means1d"]:
                database._sorted_means_1d[(q, axis)] = [
                    archive[f"m1d_{q}_{axis}_{index}"] for index in range(count)
                ]
            for delta, axis_flag in manifest["histograms"]:
                axis = None if axis_flag == -1 else axis_flag
                tag = f"{delta:g}_{axis_flag}"
                space = HistogramSpace(
                    archive[f"horigin_{tag}"], float(archive[f"hbin_{tag}"])
                )
                histograms = []
                for index in range(count):
                    keys = archive[f"hkeys_{tag}_{index}"]
                    counts = archive[f"hcounts_{tag}_{index}"]
                    histograms.append(
                        {
                            tuple(map(int, key)): int(value)
                            for key, value in zip(keys.tolist(), counts.tolist())
                        }
                    )
                database._histograms[(float(delta), axis)] = (space, histograms)
            for reference_count, policy in manifest["references"]:
                tag = f"{reference_count}_{policy}"
                reference_ids = archive[f"refids_{tag}"]
                columns = {
                    int(reference_index): archive[f"refcol_{tag}_{reference_index}"]
                    for reference_index in reference_ids
                }
                database._reference_columns[(int(reference_count), policy)] = columns
                for reference_index, column in columns.items():
                    database._reference_column_store.setdefault(
                        reference_index, column
                    )
            # Archives written before kernel autotuning existed carry no
            # "kernels" entry; they simply tune lazily on first use.
            kernel_payload = manifest.get("kernels")
            if kernel_payload is not None:
                from .kernels import KernelSelection

                selection = KernelSelection.from_dict(kernel_payload)
                selection.source = "loaded"
                database._kernel_selection = selection
        if warm:
            for q in manifest["means2d"]:
                database.flat_qgram_means(q)
            for q, axis in manifest["means1d"]:
                database.flat_qgram_means_1d(q, axis)
            for delta, axis_flag in manifest["histograms"]:
                database.histogram_arrays(
                    delta=float(delta),
                    axis=None if axis_flag == -1 else axis_flag,
                )
        return database
