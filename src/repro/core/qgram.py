"""Mean-value Q-grams for EDR pruning (paper Section 4.1).

A Q-gram of a trajectory is a window of ``q`` consecutive elements.  Two
Q-grams match when every element pair ε-matches (Definition 3), and the
count-filtering bound of Jokinen & Ukkonen (Theorem 1) transfers to EDR:

    ``EDR(R, S) <= k``  implies  ``common Q-grams >= max(m, n) - q + 1 - k*q``

so a candidate whose common-Q-gram count falls below the bound implied by
the current k-th nearest distance can be skipped without false dismissal.

Storing all Q-grams is expensive, so the paper stores only their *mean
value pairs*: Theorem 2 shows that matching Q-grams have matching means,
hence counting mean matches over-counts true Q-gram matches — which is
exactly the safe direction for pruning.  Theorem 4 extends the bound to
single-axis projections, enabling one-dimensional (B+-tree indexable)
variants at reduced pruning power.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from .matching import match_matrix
from .trajectory import Trajectory

__all__ = [
    "qgram_windows",
    "mean_value_qgrams",
    "count_common_qgrams",
    "common_qgram_lower_bound",
    "can_prune_by_qgrams",
]


def _points(trajectory: Union[Trajectory, np.ndarray, Sequence]) -> np.ndarray:
    if isinstance(trajectory, Trajectory):
        return trajectory.points
    array = np.asarray(trajectory, dtype=np.float64)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    return array


def qgram_windows(
    trajectory: Union[Trajectory, np.ndarray, Sequence], q: int
) -> np.ndarray:
    """All ``n - q + 1`` windows of ``q`` consecutive elements.

    Returns an ``(n - q + 1, q, d)`` array (empty when the trajectory is
    shorter than ``q``).  This is the raw form the paper avoids storing;
    it is exposed for tests and for the exact-window pruning ablation.
    """
    points = _points(trajectory)
    if q < 1:
        raise ValueError("Q-gram size must be at least 1")
    n, d = points.shape
    count = n - q + 1
    if count <= 0:
        return np.empty((0, q, d), dtype=np.float64)
    return np.stack([points[i : i + q] for i in range(count)])


def mean_value_qgrams(
    trajectory: Union[Trajectory, np.ndarray, Sequence], q: int
) -> np.ndarray:
    """Mean value pair of every Q-gram, shape ``(n - q + 1, d)``.

    Computed with a cumulative sum so building the pruning artifact for a
    whole database is linear.  By Theorem 2 these means are all that must
    be stored: matching Q-grams have matching means.
    """
    points = _points(trajectory)
    if q < 1:
        raise ValueError("Q-gram size must be at least 1")
    n, d = points.shape
    count = n - q + 1
    if count <= 0:
        return np.empty((0, d), dtype=np.float64)
    cumulative = np.vstack([np.zeros((1, d)), np.cumsum(points, axis=0)])
    return (cumulative[q:] - cumulative[:-q]) / q


def count_common_qgrams(
    first_means: np.ndarray, second_means: np.ndarray, epsilon: float
) -> int:
    """Number of ``first`` mean-value Q-grams with an ε-match in ``second``.

    Each query Q-gram counts at most once.  This count is an upper bound
    on the exact common-Q-gram count of Theorem 1 (approximate matching
    can only create more matches), which keeps the pruning test safe.
    A brute-force matrix formulation; the merge-join and index engines in
    :mod:`repro.index` compute the same count with better complexity.
    """
    if len(first_means) == 0 or len(second_means) == 0:
        return 0
    matches = match_matrix(first_means, second_means, epsilon)
    return int(np.count_nonzero(matches.any(axis=1)))


def common_qgram_lower_bound(m: int, n: int, q: int, k: float) -> float:
    """Theorem 1's bound: trajectories within EDR ``k`` share at least
    ``max(m, n) - q + 1 - k*q`` common Q-grams."""
    if q < 1:
        raise ValueError("Q-gram size must be at least 1")
    return max(m, n) - q + 1 - k * q


def can_prune_by_qgrams(
    common_count: int, m: int, n: int, q: int, best_so_far: float
) -> bool:
    """True when the candidate provably cannot beat ``best_so_far``.

    Contrapositive of Theorem 1: if the common count is *below* the bound
    for ``k = best_so_far`` then ``EDR > best_so_far`` and the candidate
    can be skipped.  A non-positive bound can never prune.
    """
    if not np.isfinite(best_so_far):
        return False
    return common_count < common_qgram_lower_bound(m, n, q, best_so_far)
