"""Multi-query k-NN serving: one pruner build, many queries.

The single-query engines in :mod:`repro.core.search` rebuild nothing per
query — all database-side artifacts (histogram grids, pooled Q-gram
arrays, reference columns) live behind caches on
:class:`~repro.core.database.TrajectoryDatabase` and the ``Pruner``
objects.  What a naive serving loop still pays for is (a) constructing
the pruner chain once per call site and (b) running queries strictly one
after another.  :func:`knn_batch` fixes both: the pruners are built (and
their database artifacts forced warm) exactly once, then the query set
fans out over a worker pool.

Executor choice
---------------
``serial``
    Plain loop, no pool.  The reference behavior; also the automatic
    choice on single-core machines, where a pool only adds overhead.
``thread``
    ``ThreadPoolExecutor`` sharing the warm pruners.  The bulk
    lower-bound kernels spend their time inside numpy, which releases
    the GIL, so threads overlap the filter phase; the EDR refinement
    rows are numpy too.
``process``
    ``ProcessPoolExecutor`` with a fork context: workers inherit the
    database and pruners through copy-on-write memory instead of
    pickling them per task.  Falls back to the default context where
    fork is unavailable.
``auto``
    ``serial`` when the effective worker count is 1, else ``thread``.

Whatever the executor, the answers are exactly those of running the
chosen single-query engine once per query, in query order.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .database import TrajectoryDatabase
from .edr_batch import DEFAULT_REFINE_BATCH_SIZE
from .mp import process_context
from .search import (
    Neighbor,
    Pruner,
    SearchResult,
    SearchStats,
    knn_scan,
    knn_search,
    knn_sorted_search,
)
from .subtrajectory import DEFAULT_WINDOW_ALPHA, subknn_search
from .trajectory import Trajectory

__all__ = ["knn_batch", "warm_pruners", "BatchResult", "BATCH_ENGINES"]

BATCH_ENGINES = ("scan", "search", "sorted")

# Per-process state for the fork-based process pool: set in the parent
# before forking so children inherit it without any per-task pickling.
_WORKER_STATE: Optional[dict] = None


@dataclass
class BatchResult:
    """Results of a multi-query batch, in query order."""

    neighbors: List[List[Neighbor]]
    stats: List[SearchStats]
    elapsed_seconds: float = 0.0
    executor: str = "serial"
    workers: int = 1
    extra: dict = field(default_factory=dict)

    def __iter__(self):
        return iter(zip(self.neighbors, self.stats))

    def __len__(self) -> int:
        return len(self.neighbors)


def _run_engine(
    database: TrajectoryDatabase,
    query: Trajectory,
    k: int,
    pruners: Sequence[Pruner],
    engine: str,
    early_abandon: bool,
    refine_batch_size: Optional[int] = DEFAULT_REFINE_BATCH_SIZE,
    edr_kernel: Optional[str] = None,
    sub: bool = False,
    alpha: float = DEFAULT_WINDOW_ALPHA,
    min_window: Optional[int] = None,
    max_window: Optional[int] = None,
):
    if sub:
        # One engine family serves every ``engine`` label: the window
        # scan is already the sorted pipeline, and with no pruners it
        # degenerates to the full scan.
        return subknn_search(
            database,
            query,
            k,
            pruners,
            alpha=alpha,
            min_window=min_window,
            max_window=max_window,
            early_abandon=early_abandon,
            refine_batch_size=refine_batch_size,
            edr_kernel=edr_kernel,
        )
    if engine == "scan" or not pruners:
        return knn_scan(database, query, k, edr_kernel=edr_kernel)
    if engine == "search":
        return knn_search(
            database,
            query,
            k,
            pruners,
            early_abandon=early_abandon,
            refine_batch_size=refine_batch_size,
            edr_kernel=edr_kernel,
        )
    if engine == "sorted":
        return knn_sorted_search(
            database,
            query,
            k,
            pruners[0],
            pruners[1:],
            early_abandon=early_abandon,
            refine_batch_size=refine_batch_size,
            edr_kernel=edr_kernel,
        )
    raise ValueError(
        f"unknown batch engine {engine!r}; choose from {', '.join(BATCH_ENGINES)}"
    )


def warm_pruners(pruners: Sequence[Pruner], probe: Trajectory) -> None:
    """Force every database-side artifact to exist before queries fan out.

    Pruner construction is lazy in places (reference columns, pooled
    Q-gram arrays build on first use); one throwaway ``for_query`` per
    pruner materializes them in the parent so concurrent workers never
    race to build — or redundantly rebuild — the same cache.  Long-lived
    callers (the query service, batch jobs) call this once at startup so
    no request ever pays index-construction latency.
    """
    for pruner in pruners:
        pruner.for_query(probe)


def _initialize_worker(state: dict) -> None:
    global _WORKER_STATE
    _WORKER_STATE = state


def _process_task(query_position: int) -> SearchResult:
    state = _WORKER_STATE
    assert state is not None, "process worker used before initialization"
    return _run_engine(
        state["database"],
        state["queries"][query_position],
        state["k"],
        state["pruners"],
        state["engine"],
        state["early_abandon"],
        state["refine_batch_size"],
        state["edr_kernel"],
        state["sub"],
        state["alpha"],
        state["min_window"],
        state["max_window"],
    )


def _resolve_executor(executor: str, workers: int) -> str:
    if executor not in ("auto", "serial", "thread", "process"):
        raise ValueError(
            f"unknown executor {executor!r}; "
            "choose from auto, serial, thread, process"
        )
    if executor == "auto":
        if workers <= 1 or (os.cpu_count() or 1) <= 1:
            return "serial"
        return "thread"
    return executor


def knn_batch(
    database: TrajectoryDatabase,
    queries: Sequence[Trajectory],
    k: int,
    pruners: Sequence[Pruner] = (),
    engine: str = "sorted",
    workers: Optional[int] = None,
    executor: str = "auto",
    early_abandon: bool = False,
    refine_batch_size: Optional[int] = DEFAULT_REFINE_BATCH_SIZE,
    shards: Optional[int] = None,
    shard_workers: Optional[int] = None,
    sharded=None,
    edr_kernel: Optional[str] = None,
    sub: bool = False,
    alpha: float = DEFAULT_WINDOW_ALPHA,
    min_window: Optional[int] = None,
    max_window: Optional[int] = None,
) -> BatchResult:
    """Answer many k-NN queries against one database.

    Parameters
    ----------
    database, k:
        As in the single-query engines.
    queries:
        The query trajectories; results come back in the same order.
    pruners:
        Shared pruner chain.  Built once by the caller, warmed once
        here, reused by every query.  Empty means sequential scan.
    engine:
        ``"sorted"`` (default — :func:`knn_sorted_search` with the first
        pruner in the primary role), ``"search"``
        (:func:`knn_search`), or ``"scan"``.
    workers:
        Worker count for the pool; ``None`` means ``os.cpu_count()``.
        Ignored by the serial executor.
    executor:
        ``"auto"``, ``"serial"``, ``"thread"``, or ``"process"`` — see
        the module docstring.
    refine_batch_size:
        Candidate-batch size for the engines' batched EDR refinement
        (see :func:`repro.knn_search`); ``None`` restores the scalar
        per-candidate verification.
    edr_kernel:
        Refine kernel selection (see :mod:`repro.core.kernels`):
        ``None`` keeps the legacy batched kernel, ``"auto"`` resolves
        the database's autotuned per-bucket table (built once, in the
        parent, before queries fan out), a concrete name pins that
        kernel.  Answers are byte-identical for every choice.
    shards / shard_workers / sharded:
        The *intra*-query parallelism axis.  ``shards > 1`` partitions
        the database and runs every query through the shared-memory
        :class:`~repro.core.sharding.ShardedDatabase` engine (queries
        stay sequential: each one occupies the whole shard pool).
        ``sharded`` passes a prebuilt engine instead — the long-lived
        path used by the query service, which keeps its worker pool and
        shared-memory blocks resident across requests.  Answers are
        byte-for-byte those of the serial engines either way; the
        pruner chain must map onto the spec families
        (histogram/histogram-1d/qgram/nti).
    sub / alpha / min_window / max_window:
        ``sub=True`` switches every query to the subtrajectory engine
        (:func:`repro.core.subtrajectory.subknn_search`): each result
        row is a :class:`~repro.core.subtrajectory.WindowMatch` — the
        best banded window per corpus trajectory, top-k across the
        corpus — instead of a :class:`Neighbor`.  ``alpha`` bands the
        window lengths to ``[m·(1−α), m·(1+α)]`` around each query's
        length ``m``; ``min_window``/``max_window`` override the band
        edges explicitly.  The ``engine`` label is accepted unchanged
        (the window scan *is* the sorted pipeline; with no pruners it
        degenerates to a scan), and every executor — serial, thread,
        process, sharded — answers byte-for-byte identically.
    """
    if engine not in BATCH_ENGINES:
        raise ValueError(
            f"unknown batch engine {engine!r}; "
            f"choose from {', '.join(BATCH_ENGINES)}"
        )
    queries = list(queries)
    pruners = list(pruners)
    if sharded is not None or (shards is not None and shards > 1):
        if engine == "scan" and not sub:
            raise ValueError(
                "sharded execution applies to the pruned engines, not 'scan'"
            )
        return _knn_batch_sharded(
            database, queries, k, pruners, engine, early_abandon,
            refine_batch_size, shards, shard_workers, sharded, edr_kernel,
            sub, alpha, min_window, max_window,
        )
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError("workers must be at least 1")
    workers = min(workers, max(len(queries), 1))
    chosen = _resolve_executor(executor, workers)

    start = time.perf_counter()
    if queries and pruners:
        warm_pruners(pruners, queries[0])
    if edr_kernel == "auto":
        # Tune once in the parent so pool workers (forked or threaded)
        # inherit the cached table instead of each racing the kernels.
        database.kernel_selection()
    warm_seconds = time.perf_counter() - start

    if chosen == "serial" or workers == 1 or len(queries) <= 1:
        chosen = "serial"
        results = [
            _run_engine(
                database, query, k, pruners, engine, early_abandon,
                refine_batch_size, edr_kernel, sub, alpha,
                min_window, max_window,
            )
            for query in queries
        ]
    elif chosen == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(
                pool.map(
                    lambda query: _run_engine(
                        database, query, k, pruners, engine, early_abandon,
                        refine_batch_size, edr_kernel, sub, alpha,
                        min_window, max_window,
                    ),
                    queries,
                )
            )
    else:  # process
        state = {
            "database": database,
            "queries": queries,
            "k": k,
            "pruners": pruners,
            "engine": engine,
            "early_abandon": early_abandon,
            "refine_batch_size": refine_batch_size,
            "edr_kernel": edr_kernel,
            "sub": sub,
            "alpha": alpha,
            "min_window": min_window,
            "max_window": max_window,
        }
        context, start_method = process_context("fork")
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_initialize_worker,
            initargs=(state,),
        ) as pool:
            results = list(pool.map(_process_task, range(len(queries))))
        for _, stats in results:
            stats.start_method = start_method

    elapsed = time.perf_counter() - start
    extra = {"warm_seconds": warm_seconds, "engine": engine}
    if sub:
        extra["sub"] = True
        extra["alpha"] = alpha
    if chosen == "process":
        extra["start_method"] = start_method
    return BatchResult(
        neighbors=[neighbors for neighbors, _ in results],
        stats=[stats for _, stats in results],
        elapsed_seconds=elapsed,
        executor=chosen,
        workers=1 if chosen == "serial" else workers,
        extra=extra,
    )


def _knn_batch_sharded(
    database: TrajectoryDatabase,
    queries: Sequence[Trajectory],
    k: int,
    pruners: Sequence[Pruner],
    engine: str,
    early_abandon: bool,
    refine_batch_size: Optional[int],
    shards: Optional[int],
    shard_workers: Optional[int],
    sharded,
    edr_kernel: Optional[str] = None,
    sub: bool = False,
    alpha: float = DEFAULT_WINDOW_ALPHA,
    min_window: Optional[int] = None,
    max_window: Optional[int] = None,
) -> BatchResult:
    """Run the batch through the sharded intra-query engine.

    ``engine`` ("search"/"sorted") is accepted for interface symmetry:
    the sharded pipeline is a sorted scan whose answers equal both
    serial engines, so the choice only labels the result.
    """
    from .sharding import ShardedDatabase, pruner_spec_of

    spec = pruner_spec_of(pruners)
    owned = sharded is None
    if owned:
        sharded = ShardedDatabase(
            database,
            shards,
            specs=[spec],
            workers=shard_workers,
        )
    elif not sharded.supports(spec):
        raise ValueError(
            f"prebuilt sharded engine lacks artifacts for pruner spec {spec!r}"
        )
    start = time.perf_counter()
    try:
        if sub:
            results = [
                sharded.subknn_search(
                    query, k, spec=spec, alpha=alpha,
                    min_window=min_window, max_window=max_window,
                    early_abandon=early_abandon,
                    refine_batch_size=refine_batch_size,
                    edr_kernel=edr_kernel,
                )
                for query in queries
            ]
        else:
            results = [
                sharded.knn_search(
                    query, k, spec=spec, early_abandon=early_abandon,
                    refine_batch_size=refine_batch_size, edr_kernel=edr_kernel,
                )
                for query in queries
            ]
    finally:
        if owned:
            sharded.close()
    elapsed = time.perf_counter() - start
    extra = {
        "engine": engine,
        "shards": sharded.shards,
        "shard_mode": sharded.mode,
        "start_method": sharded.start_method,
    }
    if sub:
        extra["sub"] = True
        extra["alpha"] = alpha
    return BatchResult(
        neighbors=[neighbors for neighbors, _ in results],
        stats=[stats for _, stats in results],
        elapsed_seconds=elapsed,
        executor="sharded",
        workers=sharded.workers,
        extra=extra,
    )
