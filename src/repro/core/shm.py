"""Named numpy arrays packed into one shared-memory segment.

The sharded query engine keeps every per-shard pruning artifact —
trajectory points, length offsets, Q-gram mean pools, histogram count
matrices, near-triangle reference columns — in POSIX shared memory so
that a persistent worker pool maps them once and every query task ships
only scalars (a digest, a bound, a handful of candidate ids).  This is
what makes per-task dispatch cheap: nothing database-sized is pickled,
ever, and unlike fork's copy-on-write pages the mapping stays shared for
the lifetime of a long-lived service process no matter how Python's
allocator churns the parent heap.

:class:`SharedArrayBlock` is the container: a dictionary of named arrays
laid out back-to-back (64-byte aligned) in a single
:class:`multiprocessing.shared_memory.SharedMemory` segment, described
by a small picklable *manifest* ``{name, entries: {key: (dtype, shape,
offset)}}``.  Workers :meth:`attach` by manifest and get read-only numpy
views straight into the mapping.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Dict, Mapping, Tuple

import numpy as np

__all__ = ["SharedArrayBlock"]

# Cache-line alignment for every packed array: keeps vectorized kernels
# on their happy path and makes offsets independent of insertion order
# quirks.
_ALIGN = 64


def _aligned(size: int) -> int:
    return (size + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedArrayBlock:
    """A set of named read-only numpy arrays in one shared-memory segment.

    Create in the owning process with :meth:`create`, hand the
    :attr:`manifest` to workers (it is tiny and picklable), and
    :meth:`attach` there.  The creating process is the *owner* and must
    eventually call :meth:`unlink`; every process (owner included)
    should :meth:`close` when done with its mapping.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        entries: Dict[str, Tuple[str, Tuple[int, ...], int]],
        owner: bool,
    ) -> None:
        self._segment = segment
        self._entries = entries
        self._owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, arrays: Mapping[str, np.ndarray]) -> "SharedArrayBlock":
        """Pack ``arrays`` into a fresh segment (contents are copied once)."""
        entries: Dict[str, Tuple[str, Tuple[int, ...], int]] = {}
        offset = 0
        prepared: Dict[str, np.ndarray] = {}
        for key, array in arrays.items():
            array = np.ascontiguousarray(array)
            prepared[key] = array
            entries[key] = (array.dtype.str, tuple(array.shape), offset)
            offset += _aligned(array.nbytes)
        segment = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for key, array in prepared.items():
            dtype, shape, start = entries[key]
            view = np.ndarray(shape, dtype=dtype, buffer=segment.buf, offset=start)
            view[...] = array
        return cls(segment, entries, owner=True)

    @property
    def manifest(self) -> Dict[str, object]:
        """Picklable description sufficient to :meth:`attach` elsewhere."""
        return {"name": self._segment.name, "entries": dict(self._entries)}

    @classmethod
    def attach(cls, manifest: Mapping[str, object]) -> "SharedArrayBlock":
        """Map an existing segment described by a :attr:`manifest`.

        The mapped segment is sanity-checked against the manifest's
        layout: a segment smaller than the entries claim means the
        manifest is stale or names a foreign segment, and silently
        returning views into it would read garbage (or fault).  The OS
        may round segment sizes *up*, so the check is ``>=``.
        """
        entries = dict(manifest["entries"])
        required = 0
        for dtype, shape, offset in entries.values():
            count = 1
            for dim in shape:
                count *= dim
            required = max(required, offset + count * np.dtype(dtype).itemsize)
        segment = shared_memory.SharedMemory(name=manifest["name"])
        if segment.size < required:
            segment.close()
            raise ValueError(
                f"shared-memory segment {manifest['name']!r} is "
                f"{segment.size} bytes but the manifest describes "
                f"{required} — stale or foreign manifest"
            )
        return cls(segment, entries, owner=False)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def arrays(self) -> Dict[str, np.ndarray]:
        """Read-only views of every packed array, keyed by name.

        The views alias the mapping directly — zero copies — and stay
        valid until :meth:`close`.  Callers must not let them outlive
        the block.
        """
        views: Dict[str, np.ndarray] = {}
        for key, (dtype, shape, offset) in self._entries.items():
            view = np.ndarray(shape, dtype=dtype, buffer=self._segment.buf, offset=offset)
            view.setflags(write=False)
            views[key] = view
        return views

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def nbytes(self) -> int:
        return self._segment.size

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        if not self._closed:
            self._closed = True
            self._segment.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only; call after every close)."""
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
