"""Process-pool context selection, shared by every parallel engine.

The parallel paths (``knn_batch``'s process executor, ``edr_matrix``'s
row workers, the sharded query engine) all prefer the ``fork`` start
method: children inherit the database, the pruner state, and module
globals through copy-on-write memory, so nothing is pickled per worker.
Platforms without ``fork`` (Windows, macOS under the ``spawn`` default)
used to fall back *silently* to the default context, which both hides a
real behavioral difference (initializer state is pickled per worker,
inherited synchronization primitives are unavailable) and makes
performance reports ambiguous.  :func:`process_context` centralizes the
choice: it returns the context *and* the chosen start-method name so
callers can surface it (``SearchStats``, the service's ``/stats``), and
it warns exactly once per process when the fork preference cannot be
honored.
"""

from __future__ import annotations

import multiprocessing
import warnings
from typing import Tuple

__all__ = ["process_context", "start_method_name", "terminate_pool"]

_warned_fallback = False


def process_context(prefer: str = "fork") -> Tuple[object, str]:
    """The preferred multiprocessing context and its start-method name.

    Returns ``(context, method)`` where ``method`` is the start method
    actually selected (``"fork"`` where available, else the platform
    default).  On the first fallback a single :class:`RuntimeWarning` is
    emitted; subsequent calls stay quiet so per-query engines do not
    spam.
    """
    global _warned_fallback
    try:
        return multiprocessing.get_context(prefer), prefer
    except ValueError:
        context = multiprocessing.get_context()
        method = context.get_start_method()
        if not _warned_fallback:
            _warned_fallback = True
            warnings.warn(
                f"multiprocessing start method {prefer!r} is unavailable on "
                f"this platform; falling back to {method!r} (worker state is "
                "pickled per worker instead of inherited, and the sharded "
                "engine's cooperative bound is disabled)",
                RuntimeWarning,
                stacklevel=2,
            )
        return context, method


def terminate_pool(pool) -> None:
    """Forcibly stop a :class:`~concurrent.futures.ProcessPoolExecutor`.

    A graceful ``shutdown(wait=True)`` blocks behind a hung or dead
    worker, which is exactly the situation the sharded engine's
    recovery path is in when it calls this: SIGTERM every worker
    process first, then shut the executor down without waiting.
    Safe on pools that are already broken or partially dead.
    """
    for process in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already reaped
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - broken executor internals
        pass


def start_method_name(prefer: str = "fork") -> str:
    """The start method :func:`process_context` would select, by name."""
    try:
        multiprocessing.get_context(prefer)
        return prefer
    except ValueError:
        return multiprocessing.get_context().get_start_method()
