"""EDR alignments: the edit script behind the distance.

``edr`` reports only the minimum number of edit operations; applications
like the paper's motivating examples (where did two players' movements
coincide? which part of a gesture deviated?) also need the *alignment* —
which elements matched for free and which were inserted, deleted, or
replaced.  This module materializes the full DP matrix and backtracks
the optimal edit script.

``subtrajectory_edr`` additionally solves the semi-global variant (the
approximate-string-matching setting Theorem 1 originates from): find the
window of a long trajectory that a short pattern matches best, with the
text's prefix and suffix free of charge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

import numpy as np

from .matching import match_matrix
from .trajectory import Trajectory

__all__ = ["EditOperation", "edr_alignment", "subtrajectory_edr"]


@dataclass(frozen=True)
class EditOperation:
    """One step of an EDR edit script.

    ``kind`` is ``"match"`` (free), ``"replace"``, ``"delete"`` (drops
    ``first_index`` of the first trajectory), or ``"insert"`` (adds
    ``second_index`` of the second).  Indices are ``None`` on the side
    an operation does not touch.
    """

    kind: str
    first_index: Union[int, None]
    second_index: Union[int, None]

    @property
    def cost(self) -> int:
        return 0 if self.kind == "match" else 1


def _full_table(
    a: np.ndarray, b: np.ndarray, epsilon: float
) -> Tuple[np.ndarray, np.ndarray]:
    m, n = len(a), len(b)
    matches = match_matrix(a, b, epsilon) if m and n else np.zeros((m, n), bool)
    table = np.zeros((m + 1, n + 1), dtype=np.float64)
    table[:, 0] = np.arange(m + 1)
    table[0, :] = np.arange(n + 1)
    for i in range(1, m + 1):
        subcost = np.where(matches[i - 1], 0.0, 1.0)
        row = table[i]
        previous = table[i - 1]
        row[1:] = np.minimum(previous[:-1] + subcost, previous[1:] + 1.0)
        # Left-propagation with unit cost (running minimum trick).
        indices = np.arange(n + 1, dtype=np.float64)
        table[i] = indices + np.minimum.accumulate(row - indices)
    return table, matches


def edr_alignment(
    first: Union[Trajectory, np.ndarray, Sequence],
    second: Union[Trajectory, np.ndarray, Sequence],
    epsilon: float,
) -> Tuple[float, List[EditOperation]]:
    """The EDR distance together with one optimal edit script.

    Returns ``(distance, operations)``; the operations transform
    ``first`` into ``second`` reading left to right, and the number of
    non-match operations equals the distance.  Ties between equal-cost
    scripts are broken in favour of match/replace, then delete.
    """
    if epsilon < 0.0:
        raise ValueError("matching threshold epsilon must be non-negative")
    a = first.points if isinstance(first, Trajectory) else np.atleast_2d(
        np.asarray(first, dtype=np.float64).reshape(len(first), -1)
        if len(first) else np.empty((0, 1))
    )
    b = second.points if isinstance(second, Trajectory) else np.atleast_2d(
        np.asarray(second, dtype=np.float64).reshape(len(second), -1)
        if len(second) else np.empty((0, 1))
    )
    if len(a) and len(b) and a.shape[1] != b.shape[1]:
        raise ValueError("trajectories must have the same spatial arity")
    table, matches = _full_table(a, b, epsilon)
    operations: List[EditOperation] = []
    i, j = len(a), len(b)
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            subcost = 0.0 if matches[i - 1, j - 1] else 1.0
            if table[i, j] == table[i - 1, j - 1] + subcost:
                kind = "match" if subcost == 0.0 else "replace"
                operations.append(EditOperation(kind, i - 1, j - 1))
                i -= 1
                j -= 1
                continue
        if i > 0 and table[i, j] == table[i - 1, j] + 1.0:
            operations.append(EditOperation("delete", i - 1, None))
            i -= 1
            continue
        operations.append(EditOperation("insert", None, j - 1))
        j -= 1
    operations.reverse()
    distance = float(table[len(a), len(b)])
    assert sum(op.cost for op in operations) == distance
    return distance, operations


def subtrajectory_edr(
    pattern: Union[Trajectory, np.ndarray, Sequence],
    text: Union[Trajectory, np.ndarray, Sequence],
    epsilon: float,
) -> Tuple[float, Tuple[int, int]]:
    """Best-matching window: min EDR between ``pattern`` and any window of ``text``.

    Semi-global alignment — deletions of the text's prefix and suffix
    are free: ``D[0, j] = 0`` and the answer is the minimum of the last
    row.  Returns ``(distance, (start, end))`` with ``text[start:end]``
    the best-aligned window (empty when the pattern aligns to nothing).

    This is the trajectory form of the approximate string matching
    problem ([17], [31], [10]) that Theorem 1's Q-gram filter was
    invented for, and serves the paper's surveillance/sports motivation:
    find where a short movement pattern occurs inside a long recording.
    """
    if epsilon < 0.0:
        raise ValueError("matching threshold epsilon must be non-negative")
    def _coerce(value):
        if isinstance(value, Trajectory):
            return value.points
        array = np.asarray(value, dtype=np.float64)
        if array.size == 0:
            return array.reshape(0, 1)
        return array.reshape(len(array), -1)

    p = _coerce(pattern)
    t = _coerce(text)
    m, n = len(p), len(t)
    if m == 0:
        return 0.0, (0, 0)
    if n == 0:
        return float(m), (0, 0)

    matches = match_matrix(p, t, epsilon)
    # table[i, j] = best cost of aligning pattern[:i] against a window of
    # text ending at j; start[i, j] tracks the window's left edge.
    previous = np.zeros(n + 1)
    previous_start = np.arange(n + 1)  # window starting at j itself
    for i in range(1, m + 1):
        current = np.empty(n + 1)
        current_start = np.empty(n + 1, dtype=np.int64)
        current[0] = float(i)
        current_start[0] = 0
        for j in range(1, n + 1):
            subcost = 0.0 if matches[i - 1, j - 1] else 1.0
            best = previous[j - 1] + subcost
            best_start = previous_start[j - 1]
            if previous[j] + 1.0 < best:
                best = previous[j] + 1.0
                best_start = previous_start[j]
            if current[j - 1] + 1.0 < best:
                best = current[j - 1] + 1.0
                best_start = current_start[j - 1]
            current[j] = best
            current_start[j] = best_start
        previous = current
        previous_start = current_start
    end = int(np.argmin(previous))
    return float(previous[end]), (int(previous_start[end]), end)
