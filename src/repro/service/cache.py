"""LRU result cache for served query responses.

Keys are full request signatures — the query's content digest plus every
parameter that can change the answer (k or radius, ε is fixed per
database, the canonical pruner spec, engine, refinement knobs) — so a
hit is guaranteed to be the byte-identical response the computation
would produce.  Values are the response payload dicts; the cache stores
them as-is and callers must not mutate what they get back (the service
layer copies before annotating).

Thread-safety: the event loop reads, the dispatch worker writes — every
operation takes one small lock.  ``capacity=0`` disables the cache
entirely (every ``get`` is a bypass, not a miss, so hit-rate accounting
stays meaningful).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Hashable, Optional

import numpy as np

__all__ = ["ResultCache", "query_digest"]


def query_digest(points: np.ndarray) -> str:
    """A content digest of a query trajectory's point array.

    Two queries get the same digest exactly when their float64 point
    arrays are byte-identical (shape included) — the same condition
    under which every engine in this library returns the same answer.
    """
    array = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    digest = hashlib.sha1()
    digest.update(str(array.shape).encode())
    digest.update(array.tobytes())
    return digest.hexdigest()


class ResultCache:
    """A bounded LRU mapping of request signatures to response payloads."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, dict]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def get(self, key: Hashable) -> Optional[dict]:
        """The cached payload for ``key``, refreshed to most-recent, or None."""
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Hashable, value: dict) -> None:
        if not self.enabled:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        looked_up = self.hits + self.misses
        return self.hits / looked_up if looked_up else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": round(self.hit_rate, 6),
            }
