"""Micro-batching of concurrent k-NN requests.

The point of serving from one resident database is amortization; the
micro-batcher adds the per-request half of it.  Concurrent requests with
the same search parameters (one *group* per parameter signature) are
collected for a short window — until ``max_batch`` distinct queries are
pending or ``max_delay`` has elapsed since the group opened — and then
dispatched as a single :func:`repro.knn_batch` call on the dispatch
executor, so the vectorized bulk-bound and batched-EDR kernels run once
per batch instead of once per request.

Two things fall out of the window for free:

* **Duplicate coalescing** — requests whose query digest matches one
  already pending in the window attach to the same future and are
  answered by the same single computation.  Under skewed (hot-query)
  traffic this is the dominant saving; the LRU cache catches repeats
  *across* windows, the batcher catches them *within* one.
* **Backpressure shaping** — while a batch computes, the next window
  fills; a closed-loop client population therefore self-organizes into
  full batches without any explicit coordination.

``max_batch=1`` disables both: every request dispatches alone the
moment it arrives.  That configuration is the baseline the
``bench-serve`` harness measures against.

The batcher is event-loop-confined: every method except the executor-run
batch body must be called from the loop thread.  Waiters are handed
``asyncio.shield``-ed futures, so a per-request timeout cancels only the
waiter, never the shared computation.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

__all__ = ["MicroBatcher"]

BatchRunner = Callable[[List[object]], Sequence[object]]


class _Group:
    """One open batching window: the pending distinct queries of a key."""

    __slots__ = ("runner", "order", "futures", "submitted", "timer")

    def __init__(self, runner: BatchRunner) -> None:
        self.runner = runner
        self.order: List[Tuple[Hashable, object]] = []  # (digest, payload)
        self.futures: Dict[Hashable, asyncio.Future] = {}
        self.submitted = 0
        self.timer: Optional[asyncio.TimerHandle] = None


class MicroBatcher:
    def __init__(
        self,
        *,
        max_batch: int,
        max_delay: float,
        executor: Executor,
        on_batch: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay < 0.0:
            raise ValueError("max_delay must be non-negative")
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._executor = executor
        self._on_batch = on_batch
        self._groups: Dict[Hashable, _Group] = {}
        self._outstanding: "set[asyncio.Future]" = set()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(
        self,
        key: Hashable,
        digest: Hashable,
        payload: object,
        runner: BatchRunner,
    ) -> Tuple[object, dict]:
        """Enqueue one request; resolves to ``(result, batch_meta)``.

        ``key`` groups requests that may legally share one batch (same
        k, pruners, engine...); ``digest`` identifies the query content
        within the group — equal digests coalesce onto one computation.
        ``runner`` receives the list of distinct payloads (in arrival
        order) on the dispatch executor and must return one result per
        payload; all submissions for a key must pass an equivalent
        runner.
        """
        loop = asyncio.get_running_loop()
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = _Group(runner)
            if self.max_batch > 1:
                group.timer = loop.call_later(
                    self.max_delay, self._flush, key
                )
        group.submitted += 1
        future = group.futures.get(digest)
        if future is None:
            future = loop.create_future()
            group.futures[digest] = future
            group.order.append((digest, payload))
            if len(group.order) >= self.max_batch:
                self._flush(key)
        return await asyncio.shield(future)

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    def _flush(self, key: Hashable) -> None:
        group = self._groups.pop(key, None)
        if group is None:
            return
        if group.timer is not None:
            group.timer.cancel()
        payloads = [payload for _, payload in group.order]
        meta = {
            "batch_size": len(payloads),
            "submitted": group.submitted,
            "coalesced": group.submitted - len(payloads),
        }
        if self._on_batch is not None:
            self._on_batch(group.submitted, len(payloads))
        loop = asyncio.get_running_loop()
        work = loop.run_in_executor(self._executor, group.runner, payloads)
        self._outstanding.add(work)
        work.add_done_callback(
            lambda done, group=group, meta=meta: self._deliver(group, meta, done)
        )

    def _deliver(
        self, group: _Group, meta: dict, work: asyncio.Future
    ) -> None:
        self._outstanding.discard(work)
        try:
            results = work.result()
            if len(results) != len(group.order):
                raise RuntimeError(
                    f"batch runner returned {len(results)} results "
                    f"for {len(group.order)} queries"
                )
        except BaseException as error:  # delivered, not swallowed
            for _, future in group.futures.items():
                if not future.done():
                    future.set_exception(error)
            return
        for (digest, _), result in zip(group.order, results):
            future = group.futures[digest]
            if not future.done():
                future.set_result((result, meta))

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Distinct queries waiting in open windows (not yet dispatched)."""
        return sum(len(group.order) for group in self._groups.values())

    @property
    def outstanding(self) -> int:
        """Dispatched batches still computing."""
        return len(self._outstanding)

    def flush_pending(self) -> None:
        """Dispatch every open window now (used by graceful drain)."""
        for key in list(self._groups):
            self._flush(key)

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Flush open windows and wait for dispatched batches to finish.

        Returns True when everything completed within ``timeout``.
        """
        self.flush_pending()
        if not self._outstanding:
            return True
        done, pending = await asyncio.wait(
            list(self._outstanding), timeout=timeout
        )
        return not pending
