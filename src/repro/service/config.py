"""Configuration for the trajectory query service.

One dataclass holds every serving knob so the CLI, the benchmark
harness, and the tests construct servers the same way.  ``validated()``
is called once at server construction; ``public()`` is what ``/stats``
echoes back (no derived state, just the knobs).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional

from ..core.batch import BATCH_ENGINES
from ..core.edr_batch import DEFAULT_REFINE_BATCH_SIZE

__all__ = ["ServiceConfig"]


@dataclass
class ServiceConfig:
    """Every knob of the query service, with serving-sane defaults.

    Search parameters
    -----------------
    ``pruners`` is the default pruner chain (same comma syntax as the
    CLI; per-request override allowed); ``engine`` is the
    :func:`repro.knn_batch` engine used for k-NN dispatch — the default
    ``"search"`` makes served answers literally those of
    :func:`repro.knn_search`.

    Micro-batching
    --------------
    Concurrent k-NN requests are collected until ``max_batch`` distinct
    queries are pending or ``max_delay_ms`` has passed since the first,
    then dispatched as one :func:`repro.knn_batch` call.  ``max_batch=1``
    disables batching (and with it duplicate coalescing): every request
    dispatches alone, which is the baseline ``bench-serve`` measures
    against.

    Admission control
    -----------------
    At most ``queue_limit`` requests may be queued or executing; beyond
    that the server answers 503 with a ``Retry-After: retry_after_s``
    header instead of building an unbounded backlog.  Each admitted
    request is also bounded by ``request_timeout_s`` (a 504 on expiry —
    the underlying computation is not interrupted, only the waiter).
    On SIGTERM the server stops accepting, flushes pending batches, and
    waits up to ``drain_timeout_s`` for in-flight work.
    """

    host: str = "127.0.0.1"
    port: int = 8765

    # Search parameters
    pruners: str = "histogram,qgram"
    engine: str = "search"
    k_default: int = 10
    early_abandon: bool = False
    refine_batch_size: Optional[int] = DEFAULT_REFINE_BATCH_SIZE
    matrix_workers: Optional[int] = None
    # Refine-phase EDR kernel ("auto" autotunes per length bucket at
    # warm time; any fixed choice returns byte-identical answers).
    edr_kernel: str = "auto"

    # Intra-query sharding (``shards > 1`` routes supported k-NN specs
    # through the resident shared-memory ShardedDatabase engine; answers
    # are unchanged, only the execution is partition-parallel).
    shards: int = 1
    shard_workers: Optional[int] = None

    # Replicated serving tier (``replicas > 1`` puts an asyncio router
    # in front of N resident engine replica processes; answers are
    # unchanged — requests are consistent-hash routed on their full
    # signature so duplicates land on the same replica and its
    # epoch-keyed result cache; the union of the per-replica caches is
    # the fleet-wide cache, with aggregate capacity
    # ``replicas * cache_size``).  ``replica_queue_depth`` bounds each
    # replica's outstanding RPCs (beyond it the router sheds with 503 +
    # Retry-After); ``replica_spillover_depth`` is the queue depth at
    # which the router abandons hash affinity and spills to the
    # least-loaded replica; ``replica_retries`` is how many sibling
    # retries a failed RPC gets before the request errors out.
    replicas: int = 1
    replica_queue_depth: int = 8
    replica_spillover_depth: int = 4
    replica_rpc_timeout_s: float = 30.0
    replica_retries: int = 2
    replica_spawn_timeout_s: float = 60.0

    # Tiered storage: when set, the service serves a store directory
    # built by ``repro-trajectory build-store`` — artifacts attach as
    # read-only mmaps, candidates page in through the buffer pool, and
    # ``/stats`` gains a ``storage`` section.  With ``shards > 1`` the
    # sharded engine runs in mmap-attach mode over the same files.
    store: Optional[str] = None
    store_pool_pages: int = 256

    # Live ingest: when set, the service serves an ingest root
    # (``repro-trajectory ingest ROOT --init ...``) — the corpus is the
    # current generation merged with the WAL delta, and ``follow`` makes
    # the server poll the root and hot-swap to newly compacted
    # generations without dropping in-flight queries.
    ingest_root: Optional[str] = None
    follow: bool = False
    follow_poll_s: float = 0.25

    # Micro-batching
    max_batch: int = 16
    max_delay_ms: float = 5.0
    batch_executor: str = "auto"
    batch_workers: Optional[int] = None

    # Result cache
    cache_size: int = 256

    # Admission control
    queue_limit: int = 64
    request_timeout_s: float = 60.0
    retry_after_s: float = 1.0
    drain_timeout_s: float = 10.0
    # When True, compute requests get 503 while the sharded engine is in
    # degraded mode (serial fallback) instead of slower exact answers —
    # for deployments that prefer shedding to latency inflation.
    reject_on_degraded: bool = False

    # Transport
    max_body_bytes: int = 32 * 1024 * 1024
    latency_window: int = 2048

    def validated(self) -> "ServiceConfig":
        """Return self after range-checking every knob (raises ValueError)."""
        if self.engine not in BATCH_ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose from {', '.join(BATCH_ENGINES)}"
            )
        if self.k_default < 1:
            raise ValueError("k_default must be at least 1")
        from ..core.kernels import KERNEL_CHOICES

        if self.edr_kernel not in KERNEL_CHOICES:
            raise ValueError(
                f"unknown edr_kernel {self.edr_kernel!r}; choose from "
                f"{', '.join(KERNEL_CHOICES)}"
            )
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.shard_workers is not None and self.shard_workers < 1:
            raise ValueError("shard_workers must be at least 1 (or None)")
        if self.replicas < 1:
            raise ValueError("replicas must be at least 1")
        if self.replica_queue_depth < 1:
            raise ValueError("replica_queue_depth must be at least 1")
        if self.replica_spillover_depth < 1:
            raise ValueError("replica_spillover_depth must be at least 1")
        if self.replica_rpc_timeout_s <= 0.0:
            raise ValueError("replica_rpc_timeout_s must be positive")
        if self.replica_retries < 0:
            raise ValueError("replica_retries must be non-negative")
        if self.replica_spawn_timeout_s <= 0.0:
            raise ValueError("replica_spawn_timeout_s must be positive")
        if self.store_pool_pages < 1:
            raise ValueError("store_pool_pages must be at least 1")
        if self.ingest_root is not None and self.store is not None:
            raise ValueError("ingest_root and store are mutually exclusive")
        if self.follow and self.ingest_root is None:
            raise ValueError("follow requires ingest_root")
        if self.follow_poll_s <= 0.0:
            raise ValueError("follow_poll_s must be positive")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.max_delay_ms < 0.0:
            raise ValueError("max_delay_ms must be non-negative")
        if self.cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        if self.request_timeout_s <= 0.0:
            raise ValueError("request_timeout_s must be positive")
        if self.retry_after_s < 0.0:
            raise ValueError("retry_after_s must be non-negative")
        if self.drain_timeout_s < 0.0:
            raise ValueError("drain_timeout_s must be non-negative")
        if self.max_body_bytes < 1024:
            raise ValueError("max_body_bytes must be at least 1 KiB")
        if self.latency_window < 1:
            raise ValueError("latency_window must be at least 1")
        return self

    @property
    def max_delay_seconds(self) -> float:
        return self.max_delay_ms / 1000.0

    def public(self) -> dict:
        """The configuration as echoed on ``/stats``."""
        return asdict(self)
