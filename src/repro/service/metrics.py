"""Serving metrics: counters, a latency ring buffer, pruning aggregates.

The registry is deliberately small and dependency-free: counters are
plain ints behind one lock, latencies live in fixed-size ring buffers
(``collections.deque(maxlen=...)``) so memory is bounded no matter how
long the server runs, and percentiles are computed on demand from the
window — recent-window percentiles, which is what you want on a
dashboard anyway.

Everything the paper's experiments measure per query
(:class:`repro.SearchStats`: database size, true-distance computations,
per-pruner credit) is aggregated here across all served queries, so
``/stats`` reports the service's *operational pruning power* — the
fraction of candidate EDR computations the Section 4 bounds avoided
since startup.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from typing import Dict, Iterable, Optional

from ..core.search import SearchStats
from ..core.sharding import RECOVERY_FIELDS

__all__ = ["LatencyWindow", "MetricsRegistry", "summarize_samples"]


def summarize_samples(samples: Iterable[float], count: Optional[int] = None) -> dict:
    """A :meth:`LatencyWindow.summary`-shaped dict from raw samples.

    The replicated serving tier ships each replica's ring-buffer
    *samples* (seconds) over the stats RPC and merges them router-side;
    this computes the same count/mean/percentile summary over the merged
    window so fleet totals and single-process ``/stats`` read alike.
    ``count`` is the lifetime observation count when it exceeds the
    window (rings drop old samples; counters do not).
    """
    ordered = sorted(samples)
    if not ordered:
        return {"count": count or 0, "window": 0}

    def at(fraction: float) -> float:
        rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
        return round(ordered[rank] * 1000.0, 3)

    return {
        "count": count if count is not None else len(ordered),
        "window": len(ordered),
        "mean_ms": round(sum(ordered) / len(ordered) * 1000.0, 3),
        "p50_ms": at(0.50),
        "p90_ms": at(0.90),
        "p99_ms": at(0.99),
        "max_ms": round(ordered[-1] * 1000.0, 3),
    }


class LatencyWindow:
    """A fixed-size ring buffer of latency observations, in seconds."""

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("latency window capacity must be at least 1")
        self._window = deque(maxlen=capacity)
        self.count = 0
        self.total_seconds = 0.0

    def observe(self, seconds: float) -> None:
        self._window.append(seconds)
        self.count += 1
        self.total_seconds += seconds

    def samples(self) -> list:
        """The current window contents (seconds), oldest first."""
        return list(self._window)

    def percentile(self, fraction: float) -> float:
        """The ``fraction``-quantile (nearest-rank) of the current window."""
        if not self._window:
            return 0.0
        ordered = sorted(self._window)
        rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
        return ordered[rank]

    def summary(self) -> dict:
        """Count/mean/percentiles in milliseconds, for ``/stats``."""
        if not self._window:
            return {"count": self.count, "window": 0}
        ordered = sorted(self._window)

        def at(fraction: float) -> float:
            rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
            return round(ordered[rank] * 1000.0, 3)

        return {
            "count": self.count,
            "window": len(ordered),
            "mean_ms": round(
                sum(ordered) / len(ordered) * 1000.0, 3
            ),
            "p50_ms": at(0.50),
            "p90_ms": at(0.90),
            "p99_ms": at(0.99),
            "max_ms": round(ordered[-1] * 1000.0, 3),
        }


class MetricsRegistry:
    """All serving counters behind one lock, snapshotted for ``/stats``."""

    def __init__(self, latency_window: int = 2048) -> None:
        self._lock = threading.Lock()
        self._latency_capacity = latency_window
        self.started_monotonic = time.monotonic()
        self.started_unix = time.time()

        self.requests: Counter = Counter()          # per route
        self.responses: Counter = Counter()         # per status code
        self.rejected = 0                           # 503 admission refusals
        self.timeouts = 0                           # 504 deadline expiries
        self.errors = 0                             # 4xx/5xx other than above

        self._latencies: Dict[str, LatencyWindow] = {}

        # Micro-batcher accounting.
        self.batches = 0
        self.batched_requests = 0                   # requests entering batches
        self.batched_unique = 0                     # distinct queries computed
        self.coalesced = 0                          # duplicates answered free
        self.max_batch_size = 0

        # Aggregated SearchStats across every served search.
        self.search_queries = 0
        self.search_candidates = 0
        self.search_true_distance_computations = 0
        self.search_seconds = 0.0
        self.pruned_by: Counter = Counter()
        # Subtrajectory (windowed) search counters: zero until the first
        # ``/subknn`` query, at which point ``/stats`` reports how many
        # candidate windows the banded range admitted and how the bounds
        # disposed of them.
        self.windows_total = 0
        self.windows_evaluated = 0
        self.windows_pruned = 0
        self.windows_abandoned = 0

        # Sharded-execution accounting: queries answered by the
        # partition-parallel engine, their bound-republish rounds, and
        # the per-shard split of the same SearchStats counters.
        self.sharded_queries = 0
        self.sharded_rounds = 0
        self._shard_tallies: Dict[int, dict] = {}
        # Recovery events across every served query (the sharded
        # engine's per-query counters, summed) plus serial fallbacks.
        self.resilience: Counter = Counter()
        self.degraded_queries = 0
        # Which multiprocessing start methods actually served searches
        # (``fork`` everywhere it exists; the fallback method where not).
        self.start_methods: Counter = Counter()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request(self, route: str) -> None:
        with self._lock:
            self.requests[route] += 1

    def record_response(self, route: str, status: int, seconds: float) -> None:
        with self._lock:
            self.responses[status] += 1
            if status == 503:
                self.rejected += 1
            elif status == 504:
                self.timeouts += 1
            elif status >= 400:
                self.errors += 1
            window = self._latencies.get(route)
            if window is None:
                window = self._latencies[route] = LatencyWindow(
                    self._latency_capacity
                )
            window.observe(seconds)

    def record_batch(self, submitted: int, unique: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += submitted
            self.batched_unique += unique
            self.coalesced += submitted - unique
            self.max_batch_size = max(self.max_batch_size, submitted)

    def record_search_stats(
        self, stats: Iterable[SearchStats], seconds: Optional[float] = None
    ) -> None:
        with self._lock:
            for per_query in stats:
                self.search_queries += 1
                self.search_candidates += per_query.database_size
                self.search_true_distance_computations += (
                    per_query.true_distance_computations
                )
                self.pruned_by.update(per_query.pruned_by)
                self.windows_total += getattr(per_query, "windows_total", 0)
                self.windows_evaluated += getattr(
                    per_query, "windows_evaluated", 0
                )
                self.windows_pruned += getattr(per_query, "windows_pruned", 0)
                self.windows_abandoned += getattr(
                    per_query, "windows_abandoned", 0
                )
                method = getattr(per_query, "start_method", None)
                if method:
                    self.start_methods[method] += 1
                for name in RECOVERY_FIELDS:
                    value = getattr(per_query, name, 0)
                    if value:
                        self.resilience[name] += int(value)
                if getattr(per_query, "degraded", False):
                    self.degraded_queries += 1
                per_shard = getattr(per_query, "per_shard", None)
                if per_shard:
                    self.sharded_queries += 1
                    self.sharded_rounds += getattr(per_query, "rounds", 0)
                    for shard_id, shard_stats in enumerate(per_shard):
                        tally = self._shard_tallies.setdefault(
                            shard_id,
                            {
                                "queries": 0,
                                "candidates": 0,
                                "true_distance_computations": 0,
                                "pruned_by": Counter(),
                            },
                        )
                        tally["queries"] += 1
                        tally["candidates"] += shard_stats.database_size
                        tally["true_distance_computations"] += (
                            shard_stats.true_distance_computations
                        )
                        tally["pruned_by"].update(shard_stats.pruned_by)
                if seconds is None:
                    self.search_seconds += per_query.elapsed_seconds
            if seconds is not None:
                self.search_seconds += seconds

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self.started_monotonic

    def snapshot(self) -> dict:
        with self._lock:
            avoided = self.search_candidates - self.search_true_distance_computations
            return {
                "uptime_seconds": round(self.uptime_seconds, 3),
                "requests": dict(self.requests),
                "responses": {str(code): n for code, n in self.responses.items()},
                "rejected": self.rejected,
                "timeouts": self.timeouts,
                "errors": self.errors,
                "latency": {
                    route: window.summary()
                    for route, window in self._latencies.items()
                },
                "batcher": {
                    "batches": self.batches,
                    "requests": self.batched_requests,
                    "unique_computed": self.batched_unique,
                    "coalesced": self.coalesced,
                    "max_batch_size": self.max_batch_size,
                    "mean_batch_size": round(
                        self.batched_requests / self.batches, 3
                    )
                    if self.batches
                    else 0.0,
                },
                "search": {
                    "queries": self.search_queries,
                    "candidates": self.search_candidates,
                    "true_distance_computations": (
                        self.search_true_distance_computations
                    ),
                    "pruning_power": round(
                        avoided / self.search_candidates, 6
                    )
                    if self.search_candidates
                    else 0.0,
                    "pruned_by": dict(self.pruned_by),
                    "engine_seconds": round(self.search_seconds, 6),
                    "windows": {
                        "total": self.windows_total,
                        "evaluated": self.windows_evaluated,
                        "pruned": self.windows_pruned,
                        "abandoned": self.windows_abandoned,
                    },
                },
                "multiprocessing": {
                    "start_methods": dict(self.start_methods),
                },
                "sharding": {
                    "queries": self.sharded_queries,
                    "rounds": self.sharded_rounds,
                    "resilience": {
                        **{
                            name: self.resilience.get(name, 0)
                            for name in RECOVERY_FIELDS
                        },
                        "degraded_queries": self.degraded_queries,
                    },
                    "per_shard": [
                        {
                            "shard": shard_id,
                            "queries": tally["queries"],
                            "candidates": tally["candidates"],
                            "true_distance_computations": (
                                tally["true_distance_computations"]
                            ),
                            "pruned_by": dict(tally["pruned_by"]),
                        }
                        for shard_id, tally in sorted(
                            self._shard_tallies.items()
                        )
                    ],
                },
            }
