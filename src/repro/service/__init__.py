"""Trajectory query service: a resident, warmed database behind HTTP/JSON.

Everything else in this package serves one operational idea from the
paper: the cheap lower bounds of Section 4 only pay off when their
indexes are built *once* and amortized across many queries.  The service
holds one warmed :class:`~repro.core.database.TrajectoryDatabase`
resident and serves k-NN / range / distance queries over a small
stdlib-only HTTP/JSON protocol:

* :mod:`~repro.service.config` — :class:`ServiceConfig`, every knob.
* :mod:`~repro.service.batcher` — the micro-batcher: concurrent k-NN
  requests are collected for a short window and dispatched through
  :func:`repro.knn_batch`, with duplicate in-window queries coalesced
  into one computation.
* :mod:`~repro.service.cache` — LRU result cache with hit/miss
  accounting.
* :mod:`~repro.service.metrics` — request counters, latency percentiles
  from a ring buffer, aggregated pruning stats; exposed on ``/stats``.
* :mod:`~repro.service.handlers` — request validation, admission
  control, and dispatch (:class:`TrajectoryService`).
* :mod:`~repro.service.server` — asyncio HTTP framing,
  :func:`run_server` (blocking, signal-aware) and :class:`ServerHandle`
  (in-process server for tests and benchmarks).
* :mod:`~repro.service.replicas` — the replicated serving tier:
  :class:`ReplicaFleet`, a consistent-hash router over N resident
  engine replica processes whose per-replica caches compose into one
  fleet-wide result cache, with rolling deploys and fault recovery.
* :mod:`~repro.service.client` — :class:`ServiceClient`, a thin
  synchronous client over ``http.client``.
* :mod:`~repro.service.bench` — the closed-loop load generator behind
  ``repro-trajectory bench-serve`` (writes ``BENCH_service.json``).
"""

from .cache import ResultCache, query_digest
from .client import ServiceClient, ServiceError
from .config import ServiceConfig
from .handlers import TrajectoryService
from .metrics import MetricsRegistry
from .pruning import PRUNER_CHOICES, build_pruners, canonical_pruner_spec
from .replicas import FleetRejection, FleetSpec, ReplicaFleet, ReplicaSpawnError
from .server import PortInUseError, ServerHandle, run_server

__all__ = [
    "ServiceConfig",
    "TrajectoryService",
    "ServerHandle",
    "run_server",
    "PortInUseError",
    "ServiceClient",
    "ServiceError",
    "ResultCache",
    "query_digest",
    "MetricsRegistry",
    "build_pruners",
    "canonical_pruner_spec",
    "PRUNER_CHOICES",
    "ReplicaFleet",
    "FleetSpec",
    "FleetRejection",
    "ReplicaSpawnError",
]
