"""Asyncio HTTP/1.1 transport for the trajectory query service.

Stdlib-only by design: a small, strict subset of HTTP/1.1 (request line,
headers, ``Content-Length`` bodies, keep-alive) is all the JSON protocol
needs, and owning the framing keeps the dependency budget at zero.  The
interesting parts — routing, validation, batching, admission — live in
:class:`~repro.service.handlers.TrajectoryService`; this module only
moves bytes and manages server lifetime:

* :func:`run_server` — the blocking entry point behind
  ``repro-trajectory serve``.  Installs SIGTERM/SIGINT handlers (when
  the platform allows) that trigger a graceful drain: stop accepting,
  flush pending micro-batches, wait out in-flight work, exit.
* :class:`ServerHandle` — an in-process server on a background thread
  with its own event loop, used by the integration tests, the smoke
  script, and ``bench-serve``.  ``start()`` returns once the socket is
  bound (port 0 picks a free port); ``stop()`` performs the same
  graceful drain as SIGTERM.
"""

from __future__ import annotations

import asyncio
import errno
import json
import signal
import threading
from functools import partial
from typing import Optional

from ..core.database import TrajectoryDatabase
from .config import ServiceConfig
from .handlers import TrajectoryService

__all__ = ["run_server", "ServerHandle", "PortInUseError"]

_MAX_REQUEST_LINE = 8192
_MAX_HEADER_COUNT = 100


class PortInUseError(OSError):
    """The configured service port is already bound by another process."""

    def __init__(self, host: str, port: int) -> None:
        super().__init__(
            f"cannot bind {host}:{port} — the port is already in use "
            "(stop the other process, or pass a different --port / port 0 "
            "for an ephemeral one)"
        )
        self.host = host
        self.port = port


def _response_bytes(
    status: int, payload: dict, extra_headers: dict, keep_alive: bool
) -> bytes:
    reasons = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        413: "Payload Too Large",
        500: "Internal Server Error",
        503: "Service Unavailable",
        504: "Gateway Timeout",
    }
    body = json.dumps(payload).encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


async def _read_request(
    reader: asyncio.StreamReader, max_body: int
) -> Optional[tuple]:
    """One request off the wire: ``(method, path, body)``, or None on EOF.

    Raises ValueError on malformed framing (the connection is closed;
    a byte-level attacker gets no detailed feedback) and
    :class:`_BodyTooLarge` when Content-Length exceeds the cap.
    """
    request_line = await reader.readline()
    if not request_line:
        return None
    if len(request_line) > _MAX_REQUEST_LINE:
        raise ValueError("request line too long")
    parts = request_line.decode("ascii", "replace").split()
    if len(parts) != 3:
        raise ValueError("malformed request line")
    method, target, _version = parts

    headers = {}
    for _ in range(_MAX_HEADER_COUNT):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        if len(line) > _MAX_REQUEST_LINE:
            raise ValueError("header line too long")
        name, _, value = line.decode("ascii", "replace").partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise ValueError("too many headers")

    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ValueError("bad Content-Length") from None
    if length < 0:
        raise ValueError("bad Content-Length")
    if length > max_body:
        raise _BodyTooLarge(length)
    body = await reader.readexactly(length) if length else b""
    close_requested = headers.get("connection", "").lower() == "close"
    return method.upper(), target, body, close_requested


class _BodyTooLarge(Exception):
    def __init__(self, length: int) -> None:
        super().__init__(f"request body of {length} bytes exceeds the limit")


async def _handle_connection(
    service: TrajectoryService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            try:
                request = await _read_request(
                    reader, service.config.max_body_bytes
                )
            except _BodyTooLarge as error:
                writer.write(
                    _response_bytes(413, {"error": str(error)}, {}, False)
                )
                await writer.drain()
                break
            except (ValueError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
                break
            if request is None:
                break
            method, target, body, close_requested = request
            status, payload, extra = await service.handle(method, target, body)
            keep_alive = not close_requested
            writer.write(_response_bytes(status, payload, extra, keep_alive))
            await writer.drain()
            if not keep_alive:
                break
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _serve(
    database: TrajectoryDatabase,
    config: ServiceConfig,
    *,
    box: Optional[dict] = None,
    started: Optional[threading.Event] = None,
    install_signals: bool = False,
    announce: bool = False,
    warm: bool = True,
) -> None:
    """Run the service until its stop event fires, then drain gracefully."""
    service = TrajectoryService(database, config)
    if warm:
        report = service.warm()
        if announce:
            total = sum(report.values())
            print(f"warmed {len(report)} artifact(s) in {total:.2f}s")

    connections: set = set()

    async def connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connections.add(writer)
        try:
            await _handle_connection(service, reader, writer)
        finally:
            connections.discard(writer)

    try:
        server = await asyncio.start_server(connection, config.host, config.port)
    except OSError as error:
        service.close()
        if error.errno == errno.EADDRINUSE:
            raise PortInUseError(config.host, config.port) from None
        raise
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    port = server.sockets[0].getsockname()[1]
    if service.fleet is not None:
        # Respawns are scheduled onto the serving loop; tell the fleet
        # which loop that is before the first failure can happen.
        service.fleet.bind_loop(loop)
    if install_signals:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop_event.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
    if box is not None:
        box.update(
            service=service, loop=loop, stop_event=stop_event, port=port
        )
    if started is not None:
        started.set()
    if announce:
        fleet_note = (
            f" across {config.replicas} replicas" if config.replicas > 1 else ""
        )
        print(f"serving {len(service.database)} trajectories{fleet_note} on "
              f"http://{config.host}:{port} (Ctrl-C or SIGTERM to drain)")
    follow_task = None
    if config.follow:

        async def follow() -> None:
            # Poll the ingest root; a detected change schedules a hot
            # swap on the dispatch worker (serialized with queries).
            while not stop_event.is_set():
                try:
                    service.reload_if_changed()
                except Exception:  # noqa: BLE001 - keep polling
                    pass
                await asyncio.sleep(config.follow_poll_s)

        follow_task = asyncio.ensure_future(follow())
    try:
        await stop_event.wait()
    finally:
        if follow_task is not None:
            follow_task.cancel()
            try:
                await follow_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        # Graceful drain: stop accepting, then flush and wait out work.
        service.begin_drain()
        server.close()
        await server.wait_closed()
        drained = await service.drain()
        # Nudge idle keep-alive connections shut so their handler tasks
        # exit cleanly before the event loop is torn down.
        for writer in list(connections):
            writer.close()
        for _ in range(200):
            if not connections:
                break
            await asyncio.sleep(0.01)
        service.close()
        if announce:
            print("drained cleanly" if drained else "drain timed out")


def run_server(
    database: TrajectoryDatabase,
    config: ServiceConfig,
    *,
    announce: bool = True,
) -> None:
    """Blocking server entry point (the ``serve`` CLI command).

    Returns after a graceful drain triggered by SIGTERM or SIGINT.
    """
    asyncio.run(
        _serve(database, config, install_signals=True, announce=announce)
    )


class ServerHandle:
    """An in-process server on a daemon thread, for tests and benchmarks.

    Usage::

        with ServerHandle.start(database, ServiceConfig(port=0)) as handle:
            client = ServiceClient(handle.host, handle.port)
            ...

    ``stop()`` (also called on context exit) performs the same graceful
    drain as SIGTERM and joins the thread.
    """

    def __init__(
        self,
        thread: threading.Thread,
        box: dict,
        host: str,
    ) -> None:
        self._thread = thread
        self._box = box
        self.host = host
        self.port: int = box["port"]
        self.service: TrajectoryService = box["service"]

    @classmethod
    def start(
        cls,
        database: TrajectoryDatabase,
        config: ServiceConfig,
        *,
        warm: bool = True,
        timeout: float = 30.0,
    ) -> "ServerHandle":
        box: dict = {}
        started = threading.Event()
        failure: dict = {}

        def runner() -> None:
            try:
                asyncio.run(
                    _serve(
                        database, config, box=box, started=started, warm=warm
                    )
                )
            except BaseException as error:  # surfaced to the caller
                failure["error"] = error
                started.set()

        thread = threading.Thread(
            target=runner, name="repro-service", daemon=True
        )
        thread.start()
        if not started.wait(timeout):
            raise TimeoutError("service did not start in time")
        if "error" in failure:
            raise failure["error"]
        return cls(thread, box, config.host)

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self, timeout: float = 30.0) -> None:
        loop = self._box.get("loop")
        stop_event = self._box.get("stop_event")
        if loop is not None and stop_event is not None and self._thread.is_alive():
            loop.call_soon_threadsafe(stop_event.set)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
