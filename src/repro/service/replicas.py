"""Replicated serving tier: a router over N resident engine replicas.

One resident engine behind a single-worker executor is the throughput
ceiling of the PR-3 service.  This module puts an asyncio router in
front of a small fleet of **replica processes**, each a fully warmed
engine (the parent warms the database artifacts once; replicas fork and
inherit them copy-on-write) running a sequential RPC loop over a
``multiprocessing`` pipe.

Routing and the fleet-wide cache
--------------------------------
Requests are routed by **consistent hashing on the full request
signature** (query digest plus every answer-shaping parameter).  Each
replica keeps its own epoch-keyed LRU result cache, so hash affinity
makes the *union* of the per-replica caches behave as one fleet-wide
cache: a signature has exactly one home replica, no entry is duplicated
across the fleet (spillover aside), and aggregate capacity is
``replicas x cache_size``.  The router itself stores nothing — it keeps
only a single-flight map so concurrent duplicates of an in-flight
signature coalesce into one RPC fleet-wide.

Ring positions are keyed by replica *slot*, not process identity, so a
respawned or redeployed replica inherits its predecessor's partition of
the signature space and cache locality survives recovery.

Load and shedding
-----------------
Admission is per replica: each slot serves at most
``replica_queue_depth`` outstanding RPCs.  Above
``replica_spillover_depth`` the router abandons hash affinity and
spills to the least-loaded eligible replica; when every eligible
replica is saturated the request is shed with 503 + ``Retry-After``.

Rolling deploys and epoch fencing
---------------------------------
:meth:`ReplicaFleet.rolling_deploy` swaps replicas **one slot at a
time**: the replacement is spawned and warmed first, installed, and
only then is the old replica drained and retired — live capacity never
drops below N (briefly N+1).  Every response carries its replica's
``epoch``; clients echo the largest epoch they have seen as
``min_epoch`` and the router only routes them to replicas at least that
new, so one client never observes answers from mixed epochs even while
the fleet is half-swapped.  Replica caches die with their replicas, so
a deploy can never serve a stale pre-deploy answer.

Failure handling
----------------
The PR-5 fault harness extends across replicas: the router draws
directives from an attached :class:`~repro.core.faults.FaultPlan` at
the ``"replica:rpc"`` point (``shard`` addresses the replica slot) and
ships them with the RPC.  A crashed, hung, or corrupting replica is
detected by pipe EOF, RPC deadline, or checksum mismatch respectively;
the request retries on a sibling (bounded by ``replica_retries``) while
the damaged replica is killed and respawned in the background.  Every
recovery is counted in :meth:`ReplicaFleet.resilience`.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import os
import queue
import signal
import threading
import time
from bisect import bisect_right
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import faults as faults_mod
from ..core.batch import knn_batch, warm_pruners
from ..core.database import TrajectoryDatabase
from ..core.mp import process_context
from ..core.rangequery import range_search
from ..core.trajectory import Trajectory
from .cache import ResultCache, query_digest
from .config import ServiceConfig
from .metrics import LatencyWindow, summarize_samples
from .pruning import build_pruners

__all__ = [
    "FLEET_COUNTER_BY_KIND",
    "FleetSpec",
    "ReplicaFleet",
    "FleetRejection",
    "ReplicaError",
    "ReplicaSpawnError",
]

#: Ring positions per replica slot.  Enough for an even signature split
#: at small N without making ring rebuilds measurable.
_VNODES = 64

#: Which :meth:`ReplicaFleet.resilience` counter each injected fault
#: class lands in when the router detects it (the replica-tier analogue
#: of :data:`repro.core.faults.COUNTER_BY_KIND`).
FLEET_COUNTER_BY_KIND = {
    "crash": "replica_crashes",
    "slow": "timeouts",
    "pipe_eof": "transport_errors",
    "attach_fail": "transport_errors",
    "corrupt": "checksum_failures",
}

_RESILIENCE_FIELDS = (
    "replica_crashes",
    "timeouts",
    "transport_errors",
    "checksum_failures",
    "retried_on_sibling",
    "respawns",
    "respawn_failures",
    "deploys",
    "deploy_failures",
)


class FleetRejection(Exception):
    """The fleet cannot admit this request right now (serve 503)."""

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


class ReplicaError(Exception):
    """A replica answered with an engine-level error (serve 500/400)."""

    def __init__(self, exc_type: str, message: str) -> None:
        super().__init__(f"{exc_type}: {message}")
        self.exc_type = exc_type
        self.message = message


class ReplicaSpawnError(RuntimeError):
    """A replica process failed to start or to report ready in time."""


class _ReplicaDown(Exception):
    """Transport-level RPC failure: the replica died or dropped its pipe."""

    def __init__(self, crashed: bool) -> None:
        super().__init__("replica down" if crashed else "replica transport error")
        self.crashed = crashed


@dataclass
class FleetSpec:
    """Everything a replica needs to build its engine (fork-inherited).

    The database object travels by fork inheritance, never by pickling —
    the fleet requires the ``fork`` start method, which is also what
    makes replica warm-up cheap: the parent's built artifacts arrive
    copy-on-write.
    """

    database: TrajectoryDatabase
    config: ServiceConfig
    epoch_token: str = "static:0"


@dataclass
class _PendingCall:
    loop: asyncio.AbstractEventLoop
    future: asyncio.Future
    info: dict = field(default_factory=dict)


def _signature_hash(signature: Tuple) -> int:
    digest = hashlib.sha1(repr(signature).encode()).digest()
    return int.from_bytes(digest[:8], "big")


# ----------------------------------------------------------------------
# Replica child process
# ----------------------------------------------------------------------
class _ReplicaEngine:
    """The child-side engine: database, pruner chains, cache, metrics."""

    def __init__(self, spec: FleetSpec, slot: int, epoch: int) -> None:
        self.spec = spec
        self.slot = slot
        self.epoch = epoch
        self.database = spec.database
        self.config = spec.config
        self.cache = ResultCache(self.config.cache_size)
        self._chains: Dict[str, list] = {}
        self._sharded = None
        if self.config.shards > 1:
            from ..core.sharding import ShardedDatabase
            from .pruning import canonical_pruner_spec

            refine = self.config.refine_batch_size
            kwargs = {} if refine is None else {"refine_batch_size": refine}
            self._sharded = ShardedDatabase(
                self.database,
                self.config.shards,
                specs=[canonical_pruner_spec(self.config.pruners)],
                mode="process",
                workers=self.config.shard_workers,
                **kwargs,
            )
        # Engine-side metrics, shipped to the router over the "stats"
        # RPC: per-op latency rings plus the SearchStats aggregates the
        # single-process service reports, so fleet /stats can merge
        # them into the same shape.
        self._latencies: Dict[str, LatencyWindow] = {}
        self.search_queries = 0
        self.search_candidates = 0
        self.search_true = 0
        self.search_seconds = 0.0
        self.pruned_by: Counter = Counter()
        self.windows_total = 0
        self.windows_evaluated = 0
        self.windows_pruned = 0
        self.windows_abandoned = 0
        self.rpcs = 0

    def _chain(self, spec: str) -> list:
        chain = self._chains.get(spec)
        if chain is None:
            chain = build_pruners(
                self.database, spec, matrix_workers=self.config.matrix_workers
            )
            warm_pruners(chain, self.database.trajectories[0])
            self._chains[spec] = chain
        return chain

    def _record_search(self, stats_list, seconds: float) -> None:
        for stats in stats_list:
            self.search_queries += 1
            self.search_candidates += stats.database_size
            self.search_true += stats.true_distance_computations
            self.pruned_by.update(stats.pruned_by)
            self.windows_total += getattr(stats, "windows_total", 0)
            self.windows_evaluated += getattr(stats, "windows_evaluated", 0)
            self.windows_pruned += getattr(stats, "windows_pruned", 0)
            self.windows_abandoned += getattr(stats, "windows_abandoned", 0)
        self.search_seconds += seconds

    def execute(self, op: str, payload: dict) -> Tuple[dict, bool]:
        """Run one RPC; returns ``(result, served_from_cache)``."""
        if op == "ping":
            return {"pid": os.getpid(), "epoch": self.epoch}, False
        if op == "stats":
            return self.stats_snapshot(), False
        if op == "knn":
            return self._knn(payload)
        if op == "subknn":
            return self._subknn(payload)
        if op == "range":
            return self._range(payload)
        if op == "distance":
            return self._distance(payload), False
        raise ValueError(f"unknown replica op {op!r}")

    def _knn(self, payload: dict) -> Tuple[dict, bool]:
        points = np.asarray(payload["points"], dtype=np.float64)
        k = int(payload["k"])
        spec = payload["spec"]
        key = ("knn", query_digest(points), k, spec)
        cached = self.cache.get(key)
        if cached is not None:
            return cached, True
        chain = self._chain(spec)
        sharded = self._sharded
        kwargs = {}
        if (
            sharded is not None
            and self.config.engine != "scan"
            and chain
            and sharded.supports(spec)
        ):
            kwargs["sharded"] = sharded
        batch = knn_batch(
            self.database,
            [Trajectory(points)],
            k,
            chain,
            engine=self.config.engine,
            early_abandon=self.config.early_abandon,
            refine_batch_size=self.config.refine_batch_size,
            edr_kernel=self.config.edr_kernel,
            **kwargs,
        )
        ((neighbors, stats),) = list(batch)
        result = {
            "neighbors": _neighbors_payload(neighbors),
            "stats": _stats_payload(stats),
        }
        self._record_search(batch.stats, batch.elapsed_seconds)
        self.cache.put(key, result)
        return result, False

    def _subknn(self, payload: dict) -> Tuple[dict, bool]:
        points = np.asarray(payload["points"], dtype=np.float64)
        k = int(payload["k"])
        alpha = float(payload["alpha"])
        spec = payload["spec"]
        key = ("subknn", query_digest(points), k, alpha, spec)
        cached = self.cache.get(key)
        if cached is not None:
            return cached, True
        chain = self._chain(spec)
        sharded = self._sharded
        kwargs = {}
        # Window mode ignores the whole-trajectory engine choice (the
        # banded DP is its own engine), so the sharded gate matches the
        # single-process handlers: partition-parallel whenever the
        # coordinator can price the spec's window bounds.
        if sharded is not None and sharded.supports(spec):
            kwargs["sharded"] = sharded
        batch = knn_batch(
            self.database,
            [Trajectory(points)],
            k,
            chain,
            engine=self.config.engine,
            early_abandon=self.config.early_abandon,
            refine_batch_size=self.config.refine_batch_size,
            edr_kernel=self.config.edr_kernel,
            sub=True,
            alpha=alpha,
            **kwargs,
        )
        ((matches, stats),) = list(batch)
        result = {
            "matches": _windows_payload(matches),
            "stats": _stats_payload(stats),
        }
        self._record_search(batch.stats, batch.elapsed_seconds)
        self.cache.put(key, result)
        return result, False

    def _range(self, payload: dict) -> Tuple[dict, bool]:
        points = np.asarray(payload["points"], dtype=np.float64)
        radius = float(payload["radius"])
        spec = payload["spec"]
        key = ("range", query_digest(points), radius, spec)
        cached = self.cache.get(key)
        if cached is not None:
            return cached, True
        started = time.perf_counter()
        results, stats = range_search(
            self.database,
            Trajectory(points),
            radius,
            self._chain(spec),
            early_abandon=self.config.early_abandon,
            refine_batch_size=self.config.refine_batch_size,
            edr_kernel=self.config.edr_kernel,
        )
        result = {
            "results": _neighbors_payload(results),
            "stats": _stats_payload(stats),
        }
        self._record_search([stats], time.perf_counter() - started)
        self.cache.put(key, result)
        return result, False

    def _distance(self, payload: dict) -> dict:
        from ..distances.base import get_distance

        function = get_distance(payload["function"])
        first = Trajectory(np.asarray(payload["first"], dtype=np.float64))
        second = Trajectory(np.asarray(payload["second"], dtype=np.float64))
        epsilon = payload.get("epsilon")
        if epsilon is not None:
            value = float(function(first, second, float(epsilon)))
        else:
            value = float(function(first, second))
        result = {"distance": value, "function": payload["function"]}
        if epsilon is not None:
            result["epsilon"] = float(epsilon)
        return result

    def observe(self, op: str, seconds: float) -> None:
        self.rpcs += 1
        window = self._latencies.get(op)
        if window is None:
            window = self._latencies[op] = LatencyWindow(
                self.config.latency_window
            )
        window.observe(seconds)

    def stats_snapshot(self) -> dict:
        return {
            "pid": os.getpid(),
            "epoch": self.epoch,
            "slot": self.slot,
            "epoch_token": self.spec.epoch_token,
            "rpcs": self.rpcs,
            "cache": self.cache.snapshot(),
            "search": {
                "queries": self.search_queries,
                "candidates": self.search_candidates,
                "true_distance_computations": self.search_true,
                "pruned_by": dict(self.pruned_by),
                "engine_seconds": round(self.search_seconds, 6),
                "windows": {
                    "total": self.windows_total,
                    "evaluated": self.windows_evaluated,
                    "pruned": self.windows_pruned,
                    "abandoned": self.windows_abandoned,
                },
            },
            "latency": {
                op: {
                    "count": window.count,
                    "samples": window.samples(),
                }
                for op, window in self._latencies.items()
            },
        }

    def close(self) -> None:
        if self._sharded is not None:
            self._sharded.close()
            self._sharded = None


def _replica_main(conn, spec: FleetSpec, slot: int, epoch: int) -> None:
    """Child entry point: build the engine, then serve RPCs until EOF.

    The loop is strictly sequential — the router's queue-depth counter
    is therefore exactly the replica's backlog.  Fault directives ride
    on each RPC: ``apply`` runs pre-compute (crash/slow/pipe_eof fire
    here), ``wrap_result`` checksums the true result and applies any
    ``corrupt`` directive after, exactly like a sharded worker.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    engine = _ReplicaEngine(spec, slot, epoch)
    try:
        conn.send(("ready", os.getpid()))
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "shutdown":
                break
            _, seq, op, payload, directives = message
            started = time.perf_counter()
            try:
                faults_mod.apply(directives, inline=False)
                result, cached = engine.execute(op, payload)
                body, digest = faults_mod.wrap_result(result, directives)
                info = {
                    "cached": cached,
                    "elapsed_s": time.perf_counter() - started,
                }
                conn.send(("ok", seq, body, digest, info))
            except Exception as error:  # noqa: BLE001 - reported to router
                try:
                    conn.send(("err", seq, type(error).__name__, str(error)))
                except OSError:
                    break
            if op not in ("ping", "stats"):
                engine.observe(op, time.perf_counter() - started)
    finally:
        engine.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


# ----------------------------------------------------------------------
# Router-side replica handle
# ----------------------------------------------------------------------
class ReplicaHandle:
    """One replica process as seen by the router.

    A sender thread drains an outbound queue (so a full pipe can never
    block the event loop) and a receiver thread resolves pending
    futures via ``call_soon_threadsafe``.  The pending map is popped
    receiver-side, so queue depth stays accurate even when the event
    loop is busy.
    """

    def __init__(
        self,
        slot: int,
        epoch: int,
        epoch_token: str,
        process,
        conn,
        config: ServiceConfig,
    ) -> None:
        self.slot = slot
        self.epoch = epoch
        self.epoch_token = epoch_token
        self.process = process
        self.pid = process.pid
        self.conn = conn
        self.config = config
        self.state = "live"  # live -> retiring -> dead
        self.served = 0
        self._seq = itertools.count()
        self._pending: Dict[int, _PendingCall] = {}
        self._lock = threading.Lock()
        self._sendq: "queue.Queue" = queue.Queue()
        self._death_counted = False
        self._death_handled = False
        self._respawn_scheduled = False
        self._on_death = None  # fleet callback, set after construction
        self._sender = threading.Thread(
            target=self._send_loop,
            name=f"repro-replica-{slot}-send",
            daemon=True,
        )
        self._receiver = threading.Thread(
            target=self._recv_loop,
            name=f"repro-replica-{slot}-recv",
            daemon=True,
        )

    def start_io(self) -> None:
        self._sender.start()
        self._receiver.start()

    # -- properties ----------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.state != "dead" and self.process.is_alive()

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._pending) + self._sendq.qsize()

    # -- RPC -----------------------------------------------------------
    async def call(
        self,
        op: str,
        payload: dict,
        directives: Tuple = (),
        timeout: Optional[float] = None,
    ) -> Tuple[dict, str, dict]:
        """One RPC round trip; returns ``(payload, checksum, info)``.

        Raises :class:`_ReplicaDown` on transport failure,
        :class:`ReplicaError` when the replica reports an exception, and
        :class:`asyncio.TimeoutError` past the deadline.
        """
        if self.state == "dead":
            raise _ReplicaDown(crashed=False)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        seq = next(self._seq)
        with self._lock:
            self._pending[seq] = _PendingCall(loop, future)
        self._sendq.put(("rpc", seq, op, payload, tuple(directives)))
        if timeout is None:
            timeout = self.config.replica_rpc_timeout_s
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            with self._lock:
                self._pending.pop(seq, None)
            raise

    # -- worker threads ------------------------------------------------
    def _send_loop(self) -> None:
        while True:
            message = self._sendq.get()
            if message is None:
                return
            try:
                self.conn.send(message)
            except (OSError, ValueError, BrokenPipeError):
                self._mark_dead()
                return

    def _recv_loop(self) -> None:
        while True:
            try:
                message = self.conn.recv()
            except (EOFError, OSError):
                self._mark_dead()
                return
            kind = message[0]
            if kind == "ready":  # pragma: no cover - consumed at spawn
                continue
            seq = message[1]
            with self._lock:
                pending = self._pending.pop(seq, None)
            if pending is None:
                continue  # timed out and abandoned; drop the late answer
            self.served += 1
            if kind == "ok":
                _, _, body, digest, info = message
                result = (body, digest, info)
                self._resolve(pending, result, None)
            else:
                _, _, exc_type, text = message
                self._resolve(pending, None, ReplicaError(exc_type, text))

    @staticmethod
    def _resolve(pending: _PendingCall, result, error) -> None:
        def setter() -> None:
            if pending.future.done():
                return
            if error is not None:
                pending.future.set_exception(error)
            else:
                pending.future.set_result(result)

        try:
            pending.loop.call_soon_threadsafe(setter)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    def _mark_dead(self) -> None:
        with self._lock:
            first = not self._death_handled
            self._death_handled = True
            self.state = "dead"
            pending, self._pending = dict(self._pending), {}
        for call in pending.values():
            self._resolve(call, None, _ReplicaDown(crashed=True))
        callback = self._on_death
        if first and callback is not None:
            callback(self)

    # -- lifecycle -----------------------------------------------------
    def drain_sync(self, timeout: float) -> bool:
        """Block (off-loop) until the backlog empties or the deadline."""
        deadline = time.monotonic() + timeout
        while self.depth > 0 and time.monotonic() < deadline:
            if not self.process.is_alive():
                return False
            time.sleep(0.01)
        return self.depth == 0

    def kill(self) -> None:
        # A deliberate kill: the caller already attributed this death
        # (timeout, transport error), so the EOF that follows must not
        # double-count it as a crash.
        self._death_counted = True
        self.state = "dead"
        try:
            self.process.kill()
        except (OSError, AttributeError):  # pragma: no cover
            pass
        self._sendq.put(None)
        # The receiver thread sees EOF and fails any still-pending calls.

    def close(self, timeout: float = 2.0) -> None:
        """Graceful stop: shutdown message, bounded join, then SIGKILL."""
        if self.state != "dead":
            self.state = "dead"
            # Through the sender queue, never directly: Connection.send
            # is not safe against a concurrent in-flight RPC send.
            self._sendq.put(("shutdown",))
        self._sendq.put(None)
        self.process.join(timeout)
        if self.process.is_alive():
            try:
                self.process.kill()
            except OSError:  # pragma: no cover
                pass
            self.process.join(1.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass

    def snapshot(self) -> dict:
        return {
            "slot": self.slot,
            "pid": self.pid,
            "epoch": self.epoch,
            "state": self.state,
            "alive": self.alive,
            "depth": self.depth,
            "served": self.served,
        }


# ----------------------------------------------------------------------
# The fleet
# ----------------------------------------------------------------------
class ReplicaFleet:
    """N replica processes, a hash ring, and the recovery machinery.

    Threading model: ``submit``/``stats_async``/``drain`` run on the
    event loop; ``start``/``rolling_deploy``/``close`` are blocking and
    must run off it (the service calls them from its dispatch executor,
    which also serializes deploys).  Membership (``_slots``) is guarded
    by one lock; the single-flight map is loop-only state.
    """

    def __init__(self, spec: FleetSpec) -> None:
        self.config = spec.config.validated()
        self._spec = spec
        self.replicas = self.config.replicas
        self.epoch = 0
        self._slots: List[Optional[ReplicaHandle]] = [None] * self.replicas
        self._membership = threading.RLock()
        self._ring: List[Tuple[int, int]] = []  # (position, slot), sorted
        self._inflight: Dict[Tuple, asyncio.Future] = {}
        self._counters: Counter = Counter()
        self._counter_lock = threading.Lock()
        self._spawner = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-fleet"
        )
        self._fault_plan = None  # chaos hook: FaultPlan at "replica:rpc"
        self._closing = False
        self.coalesced = 0
        self.spillovers = 0
        self.shed = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._build_ring()

    # -- construction --------------------------------------------------
    def _build_ring(self) -> None:
        ring = []
        for slot in range(self.replicas):
            for vnode in range(_VNODES):
                position = _signature_hash(("ring", slot, vnode))
                ring.append((position, slot))
        ring.sort()
        self._ring = ring

    def start(self) -> None:
        """Spawn the initial fleet (blocking; call before serving)."""
        context, method = process_context("fork")
        if method != "fork":
            raise ReplicaSpawnError(
                "the replicated serving tier requires the 'fork' start "
                f"method (got {method!r}); run with replicas=1"
            )
        self.epoch = 1
        for slot in range(self.replicas):
            self._slots[slot] = self._spawn(slot, self._spec, self.epoch)

    def bind_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        """Tell the fleet which loop owns respawn scheduling."""
        self._loop = loop

    def _spawn(self, slot: int, spec: FleetSpec, epoch: int) -> ReplicaHandle:
        context, _ = process_context("fork")
        parent_conn, child_conn = context.Pipe(duplex=True)
        # Daemonic children cannot have children of their own, which the
        # replica needs when it runs a sharded engine internally.
        process = context.Process(
            target=_replica_main,
            args=(child_conn, spec, slot, epoch),
            name=f"repro-replica-{slot}",
            daemon=spec.config.shards == 1,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(spec.config.replica_spawn_timeout_s):
            process.kill()
            process.join(1.0)
            raise ReplicaSpawnError(
                f"replica {slot} did not report ready within "
                f"{spec.config.replica_spawn_timeout_s}s"
            )
        ready = parent_conn.recv()
        if ready[0] != "ready":  # pragma: no cover - protocol violation
            process.kill()
            raise ReplicaSpawnError(f"replica {slot} sent {ready[0]!r}")
        handle = ReplicaHandle(
            slot, epoch, spec.epoch_token, process, parent_conn, spec.config
        )
        handle._on_death = self._note_death
        handle.start_io()
        return handle

    # -- accounting ----------------------------------------------------
    def _count(self, name: str, value: int = 1) -> None:
        with self._counter_lock:
            self._counters[name] += value

    def resilience(self) -> Dict[str, int]:
        with self._counter_lock:
            return {
                name: self._counters.get(name, 0)
                for name in _RESILIENCE_FIELDS
            }

    # -- routing -------------------------------------------------------
    def _eligible(self, min_epoch: int) -> List[ReplicaHandle]:
        with self._membership:
            return [
                handle
                for handle in self._slots
                if handle is not None
                and handle.state == "live"
                and handle.epoch >= min_epoch
            ]

    def _route(self, sig_hash: int, min_epoch: int) -> ReplicaHandle:
        eligible = self._eligible(min_epoch)
        if not eligible:
            self.shed += 1
            raise FleetRejection("no replica available")
        slots = {handle.slot for handle in eligible}
        preferred = None
        index = bisect_right(self._ring, (sig_hash, self.replicas))
        for offset in range(len(self._ring)):
            _, slot = self._ring[(index + offset) % len(self._ring)]
            if slot in slots:
                preferred = next(h for h in eligible if h.slot == slot)
                break
        assert preferred is not None
        if preferred.depth >= self.config.replica_spillover_depth:
            least = min(eligible, key=lambda h: h.depth)
            if least.depth < preferred.depth:
                preferred = least
                self.spillovers += 1
        if preferred.depth >= self.config.replica_queue_depth:
            self.shed += 1
            raise FleetRejection(
                f"all replicas saturated (depth >= "
                f"{self.config.replica_queue_depth})"
            )
        return preferred

    # -- the serving path ----------------------------------------------
    async def submit(
        self,
        op: str,
        signature: Tuple,
        payload: dict,
        min_epoch: int = 0,
    ) -> Tuple[dict, dict]:
        """Serve one request through the fleet: ``(result, meta)``.

        Coalesces concurrent duplicates of the same signature into one
        RPC (single-flight), routes by consistent hash with spillover,
        verifies the result checksum, and retries on siblings while
        respawning damaged replicas.
        """
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        min_epoch = min(min_epoch, self.epoch)
        key = (op, signature)
        inflight = self._inflight.get(key)
        if inflight is not None:
            result, meta = await asyncio.shield(inflight)
            if meta["epoch"] >= min_epoch:
                self.coalesced += 1
                return result, {**meta, "coalesced": True}
            # The in-flight answer is older than this client may see
            # (mid-deploy); fall through to a fresh computation.
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[key] = future
        try:
            result, meta = await self._submit_uncoalesced(
                op, signature, payload, min_epoch
            )
            if not future.done():
                future.set_result((result, meta))
            return result, meta
        except BaseException as error:
            if not future.done():
                future.set_exception(error)
                # Coalesced waiters consume the exception; if none
                # attached, silence the "never retrieved" warning.
                future.exception()
            raise
        finally:
            if self._inflight.get(key) is future:
                del self._inflight[key]

    async def _submit_uncoalesced(
        self, op: str, signature: Tuple, payload: dict, min_epoch: int
    ) -> Tuple[dict, dict]:
        sig_hash = _signature_hash(signature)
        attempts = 0
        last_slot: Optional[int] = None
        while True:
            attempts += 1
            handle = self._route(sig_hash, min_epoch)
            if last_slot is not None and handle.slot != last_slot:
                self._count("retried_on_sibling")
            directives: Tuple = ()
            if self._fault_plan is not None:
                directives = self._fault_plan.directives(
                    "replica:rpc", handle.slot
                )
            try:
                body, digest, info = await handle.call(
                    op, payload, directives
                )
                if faults_mod.checksum(body) != digest:
                    self._count("checksum_failures")
                    raise _Retry()
                meta = {
                    "replica": handle.slot,
                    "epoch": handle.epoch,
                    "cached": bool(info.get("cached")),
                    "attempts": attempts,
                    "coalesced": False,
                }
                return body, meta
            except asyncio.TimeoutError:
                self._count("timeouts")
                self._condemn(handle)
            except _ReplicaDown as down:
                if down.crashed:
                    self._note_crash(handle)
                else:
                    self._count("transport_errors")
                self._condemn(handle)
            except ReplicaError as error:
                # The replica is alive; only transport-looking failures
                # (the pipe_eof / attach_fail fault classes) are
                # retryable.  Engine errors are the request's problem.
                if error.exc_type in ("EOFError", "ShardAttachError"):
                    self._count("transport_errors")
                else:
                    raise
            except _Retry:
                pass
            if attempts > self.config.replica_retries:
                raise FleetRejection(
                    f"request failed after {attempts} attempt(s) "
                    "across replicas"
                )
            last_slot = handle.slot

    # -- failure handling ----------------------------------------------
    def _note_crash(self, handle: ReplicaHandle) -> None:
        if not handle._death_counted:
            handle._death_counted = True
            self._count("replica_crashes")

    def _note_death(self, handle: ReplicaHandle) -> None:
        """Receiver-thread callback: a replica's pipe went down.

        Any unexpected EOF from a live replica is a crash — checking
        ``process.exitcode`` here would race the OS reaping the child
        (it reads ``None`` until the waitpid lands).  Deliberate kills
        pre-set ``_death_counted`` so they are not double-attributed.
        """
        if self._closing or handle.state == "retiring":
            return
        self._note_crash(handle)
        self._schedule_respawn(handle)

    def _condemn(self, handle: ReplicaHandle) -> None:
        """Kill a damaged/hung replica and respawn its slot."""
        if handle.state == "retiring" or self._closing:
            return
        handle.kill()
        self._schedule_respawn(handle)

    def _schedule_respawn(self, handle: ReplicaHandle) -> None:
        loop = self._loop
        if loop is None or self._closing:
            return
        with self._membership:
            current = self._slots[handle.slot]
            if current is not handle or handle._respawn_scheduled:
                return
            handle._respawn_scheduled = True

        def spawn() -> None:
            try:
                replacement = self._spawn(
                    handle.slot, self._spec, self.epoch
                )
            except Exception:  # noqa: BLE001 - slot stays dead
                self._count("respawn_failures")
                return
            installed = False
            with self._membership:
                if self._slots[handle.slot] is handle and not self._closing:
                    self._slots[handle.slot] = replacement
                    installed = True
            if installed:
                self._count("respawns")
            else:
                replacement.close(timeout=1.0)

        def kickoff() -> None:
            if not self._closing:
                self._spawner.submit(spawn)

        try:
            loop.call_soon_threadsafe(kickoff)
        except RuntimeError:  # pragma: no cover - loop closed
            pass

    # -- rolling deploys -----------------------------------------------
    def rolling_deploy(self, spec: FleetSpec) -> int:
        """Swap every slot to ``spec`` one at a time (blocking, off-loop).

        For each slot the replacement spawns and reports ready *before*
        the old replica stops being routable, so live capacity never
        drops below N.  The old replica drains its backlog (bounded by
        ``drain_timeout_s``) and is then reaped.  Returns the new epoch.
        """
        new_epoch = self.epoch + 1
        try:
            for slot in range(self.replicas):
                replacement = self._spawn(slot, spec, new_epoch)
                with self._membership:
                    old = self._slots[slot]
                    self._slots[slot] = replacement
                if old is not None:
                    old.state = "retiring"
                    old.drain_sync(self.config.drain_timeout_s)
                    old.close()
        except Exception:
            self._count("deploy_failures")
            raise
        self._spec = spec
        self.epoch = new_epoch
        self._count("deploys")
        return new_epoch

    # -- introspection -------------------------------------------------
    def snapshot(self) -> dict:
        """Router-side view (sync; no RPCs — safe from any thread)."""
        with self._membership:
            handles = [h for h in self._slots if h is not None]
        return {
            "enabled": True,
            "count": self.replicas,
            "epoch": self.epoch,
            "epoch_token": self._spec.epoch_token,
            "alive": sum(1 for h in handles if h.alive),
            "router": {
                "coalesced": self.coalesced,
                "spillovers": self.spillovers,
                "shed": self.shed,
                "inflight_signatures": len(self._inflight),
            },
            "resilience": self.resilience(),
            "replicas": [h.snapshot() for h in handles],
        }

    async def stats_async(self) -> dict:
        """The merged fleet view: per-replica stats plus fleet totals."""
        with self._membership:
            handles = [h for h in self._slots if h is not None]
        per_replica: List[dict] = []
        for handle in handles:
            entry = handle.snapshot()
            if handle.state == "live":
                try:
                    body, digest, _ = await handle.call(
                        "stats", {}, timeout=5.0
                    )
                    if faults_mod.checksum(body) == digest:
                        entry.update(
                            rpcs=body["rpcs"],
                            cache=body["cache"],
                            search=body["search"],
                            latency={
                                op: summarize_samples(
                                    data["samples"], data["count"]
                                )
                                for op, data in body["latency"].items()
                            },
                            _raw_latency=body["latency"],
                        )
                except (asyncio.TimeoutError, _ReplicaDown, ReplicaError):
                    entry["unresponsive"] = True
            per_replica.append(entry)

        # Fleet totals: SearchStats counters sum; latency rings merge
        # sample-by-sample so fleet percentiles are over the union.
        search_totals = Counter()
        pruned_by = Counter()
        window_totals = Counter()
        cache_totals = Counter()
        samples_by_op: Dict[str, list] = {}
        counts_by_op: Counter = Counter()
        for entry in per_replica:
            search = entry.get("search")
            if search:
                for name in (
                    "queries",
                    "candidates",
                    "true_distance_computations",
                ):
                    search_totals[name] += search[name]
                pruned_by.update(search["pruned_by"])
                window_totals.update(search.get("windows", {}))
                search_totals["engine_seconds"] += search["engine_seconds"]
            cache = entry.get("cache")
            if cache:
                for name in ("size", "capacity", "hits", "misses", "evictions"):
                    cache_totals[name] += cache[name]
            raw = entry.pop("_raw_latency", None)
            if raw:
                for op, data in raw.items():
                    samples_by_op.setdefault(op, []).extend(data["samples"])
                    counts_by_op[op] += data["count"]
        avoided = (
            search_totals["candidates"]
            - search_totals["true_distance_computations"]
        )
        looked_up = cache_totals["hits"] + cache_totals["misses"]
        fleet = {
            "search": {
                "queries": search_totals["queries"],
                "candidates": search_totals["candidates"],
                "true_distance_computations": search_totals[
                    "true_distance_computations"
                ],
                "pruning_power": round(
                    avoided / search_totals["candidates"], 6
                )
                if search_totals["candidates"]
                else 0.0,
                "pruned_by": dict(pruned_by),
                "engine_seconds": round(search_totals["engine_seconds"], 6),
                "windows": {
                    name: window_totals[name]
                    for name in ("total", "evaluated", "pruned", "abandoned")
                },
            },
            "latency": {
                op: summarize_samples(samples, counts_by_op[op])
                for op, samples in samples_by_op.items()
            },
            "cache": {
                **{k: cache_totals[k] for k in
                   ("size", "capacity", "hits", "misses", "evictions")},
                "hit_rate": round(cache_totals["hits"] / looked_up, 6)
                if looked_up
                else 0.0,
            },
        }
        snapshot = self.snapshot()
        snapshot["fleet"] = fleet
        snapshot["per_replica"] = per_replica
        del snapshot["replicas"]
        return snapshot

    # -- drain / close -------------------------------------------------
    async def drain(self, timeout: float) -> bool:
        """Wait (on the loop) for every replica's backlog to empty."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._membership:
                handles = [h for h in self._slots if h is not None]
            if all(h.depth == 0 or not h.alive for h in handles):
                return True
            await asyncio.sleep(0.02)
        return False

    def close(self) -> None:
        """Reap the fleet (blocking): shutdown, join, kill stragglers."""
        self._closing = True
        self._spawner.shutdown(wait=True, cancel_futures=True)
        with self._membership:
            handles = [h for h in self._slots if h is not None]
            self._slots = [None] * self.replicas
        for handle in handles:
            handle.close()


class _Retry(Exception):
    """Internal: this attempt failed a verification, try a sibling."""


# Payload shaping is shared with the single-process handlers so served
# bytes are identical whichever tier answers.
def _neighbors_payload(neighbors) -> List[dict]:
    return [
        {"index": int(neighbor.index), "distance": float(neighbor.distance)}
        for neighbor in neighbors
    ]


def _windows_payload(matches) -> List[dict]:
    return [
        {
            "index": int(match.index),
            "start": int(match.start),
            "end": int(match.end),
            "distance": float(match.distance),
        }
        for match in matches
    ]


def _stats_payload(stats) -> dict:
    payload = {
        "database_size": stats.database_size,
        "true_distance_computations": stats.true_distance_computations,
        "pruning_power": round(stats.pruning_power, 6),
        "pruned_by": dict(stats.pruned_by),
        "elapsed_seconds": round(stats.elapsed_seconds, 6),
    }
    if stats.windows_total:
        payload["windows_total"] = stats.windows_total
        payload["windows_evaluated"] = stats.windows_evaluated
        payload["windows_pruned"] = stats.windows_pruned
        payload["windows_abandoned"] = stats.windows_abandoned
    if stats.bytes_touched or stats.pages_read:
        payload["bytes_touched"] = stats.bytes_touched
        payload["pages_read"] = stats.pages_read
        payload["pool_hit_rate"] = round(stats.pool_hit_rate, 6)
    return payload
