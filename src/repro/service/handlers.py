"""Request handling for the trajectory query service.

:class:`TrajectoryService` is the transport-independent core of the
server: it owns the resident database, the warmed pruner chains, the
micro-batcher, the result cache, the metrics registry, and the single
dispatch executor.  The HTTP layer (:mod:`repro.service.server`) parses
requests off the wire and hands ``(method, path, body)`` to
:meth:`TrajectoryService.handle`, which returns
``(status, payload, extra_headers)``.

Endpoints
---------
``GET /healthz``
    Liveness: status, uptime, database size, drain state.
``GET /stats``
    Metrics snapshot: request/latency/batcher/cache counters plus the
    aggregated :class:`repro.SearchStats` pruning counters, and the
    serving configuration.
``POST /knn``
    ``{"query": [[x, y], ...] | index, "k": 10, "pruners": "..."}`` —
    exact k-NN under EDR, answered through the micro-batched
    :func:`repro.knn_batch` path.  Responses are exactly (ids,
    distances, tie order) what :func:`repro.knn_search` returns for the
    same parameters.
``POST /subknn``
    ``{"query": ..., "k": 10, "alpha": 0.25, "pruners": "..."}`` — exact
    top-k subtrajectory search: each hit is the best banded window of a
    corpus trajectory (``[start, end)`` plus its EDR), answered through
    the same cached, micro-batched, replica-routable path as ``/knn``
    via :func:`repro.subknn_search`.
``POST /range``
    ``{"query": ..., "radius": r, "pruners": "..."}`` — exact range
    query via :func:`repro.range_search`.
``POST /distance``
    ``{"first": ..., "second": ..., "function": "edr"}`` — one direct
    distance computation between two trajectories (database indices or
    inline point lists).

Concurrency model
-----------------
The event loop validates, consults the cache, and applies admission
control; all numeric work runs on one dispatch worker thread, so batches
execute in arrival order and the GIL-released numpy kernels inside a
batch are the unit of compute.  Admission control bounds the number of
admitted-but-unfinished requests at ``queue_limit``; excess requests get
an immediate 503 with a ``Retry-After`` header.  Each admitted request
waits at most ``request_timeout_s`` (504 on expiry; the shared batch
computation itself is never interrupted — a coalesced neighbour may
still be served by it).
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.batch import knn_batch, warm_pruners
from ..core.database import TrajectoryDatabase
from ..core.kernels import kernel_report
from ..core.rangequery import range_search
from ..core.search import Neighbor, Pruner, SearchStats
from ..core.subtrajectory import DEFAULT_WINDOW_ALPHA, WindowMatch
from ..core.trajectory import Trajectory
from ..distances.base import EPSILON_FUNCTIONS, available_distances, get_distance
from .batcher import MicroBatcher
from .cache import ResultCache, query_digest
from .config import ServiceConfig
from .metrics import MetricsRegistry
from .pruning import build_pruners, canonical_pruner_spec
from .replicas import FleetRejection, FleetSpec, ReplicaFleet

__all__ = ["TrajectoryService", "RequestError"]

JSON_HEADERS = {"Content-Type": "application/json"}


class RequestError(Exception):
    """A client-visible error: HTTP status, message, optional headers."""

    def __init__(
        self, status: int, message: str, headers: Optional[dict] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


class TrajectoryService:
    """The resident query service around one warmed database."""

    def __init__(
        self,
        database: Optional[TrajectoryDatabase],
        config: ServiceConfig,
    ) -> None:
        self.config = config.validated()
        self._tiered = None
        self._ingest = None
        self._mutable = None
        if self.config.store is not None:
            if database is not None:
                raise ValueError(
                    "pass either a database or config.store, not both"
                )
            from ..storage.tiered import TieredDatabase

            self._tiered = TieredDatabase.open(
                self.config.store, pool_pages=self.config.store_pool_pages
            )
            database = self._tiered.database
        elif self.config.ingest_root is not None:
            if database is not None:
                raise ValueError(
                    "pass either a database or config.ingest_root, not both"
                )
            from ..ingest import IngestRoot

            self._ingest = IngestRoot(self.config.ingest_root)
            # Reader role: the service must never repair the WAL or
            # prune "orphan" directories — a concurrent mutator's
            # in-flight append / mid-build generation looks identical
            # to crash debris.
            self._mutable = self._ingest.open_mutable(
                pool_pages=self.config.store_pool_pages, repair=False
            )
            database = self._mutable.view()
        elif database is None:
            raise ValueError("a database (or config.store) is required")
        self.database = database
        # Epoch token: part of every result-cache key, so a hot swap can
        # never serve a pre-swap answer even if a stale entry survived
        # the flush.  Static corpora keep a constant token.
        self._epoch_token = (
            self._mutable.token if self._mutable is not None else "static:0"
        )
        self._disk_token = (
            self._ingest.state_token() if self._ingest is not None else None
        )
        self._swap_pending = False
        self._swaps = 0
        self._swap_failures = 0
        self._swap_fault_plan = None  # chaos-suite hook (swap:attach)
        self.metrics = MetricsRegistry(config.latency_window)
        self.cache = ResultCache(config.cache_size)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-dispatch"
        )
        self.batcher = MicroBatcher(
            max_batch=config.max_batch,
            max_delay=config.max_delay_seconds,
            executor=self._executor,
            on_batch=self.metrics.record_batch,
        )
        self._pruner_chains: Dict[str, List[Pruner]] = {}
        self._sharded = None  # resident ShardedDatabase when config.shards > 1
        self._fleet: Optional[ReplicaFleet] = None  # when config.replicas > 1
        self._inflight = 0
        self._draining = False

    # ------------------------------------------------------------------
    # Warm-up and lifecycle
    # ------------------------------------------------------------------
    def warm(self) -> Dict[str, float]:
        """Build every index the default configuration will use, up front.

        Returns the per-artifact build-seconds report of
        :meth:`repro.TrajectoryDatabase.warm` so callers (the ``serve``
        command logs it) can see what startup paid for.
        """
        start = time.perf_counter()
        spec = canonical_pruner_spec(self.config.pruners)
        report = self._warm_database(self.database)
        self._pruner_chain(spec)
        report["pruner_chain"] = time.perf_counter() - start - sum(report.values())
        if (
            self.config.shards > 1
            and self._sharded is None
            # In fleet mode each replica runs its own sharded engine;
            # the parent never computes, so it keeps no shard pool.
            and self.config.replicas == 1
        ):
            shard_start = time.perf_counter()
            refine = self.config.refine_batch_size
            kwargs = {} if refine is None else {"refine_batch_size": refine}
            if self._tiered is not None:
                # Mmap-attach mode: shard workers map the store's own
                # files instead of packing artifact copies into shm.
                self._sharded = self._tiered.sharded(
                    self.config.shards,
                    specs=[spec],
                    mode="process",
                    workers=self.config.shard_workers,
                    **kwargs,
                )
            else:
                from ..core.sharding import ShardedDatabase

                self._sharded = ShardedDatabase(
                    self.database,
                    self.config.shards,
                    specs=[spec],
                    mode="process",
                    workers=self.config.shard_workers,
                    **kwargs,
                )
            report["sharding"] = time.perf_counter() - shard_start
        if self.config.replicas > 1 and self._fleet is None:
            fleet_start = time.perf_counter()
            self._fleet = ReplicaFleet(
                FleetSpec(self.database, self.config, self._epoch_token)
            )
            self._fleet.start()
            report["replicas"] = time.perf_counter() - fleet_start
        return report

    def _warm_database(self, database: TrajectoryDatabase) -> Dict[str, float]:
        """Build the artifacts the configured pruner chain needs.

        Shared by startup warm-up and fleet deploys: a new generation is
        warmed once in the parent so every replica forks the built
        artifacts copy-on-write.
        """
        spec = canonical_pruner_spec(self.config.pruners)
        return database.warm(
            q=1 if "qgram" in spec else None,
            histogram_bins=1.0 if "histogram" in spec else None,
            per_axis="histogram-1d" in spec,
            references=50 if "nti" in spec else 0,
            workers=self.config.matrix_workers,
            # "auto" autotunes the refine kernel table now, off the
            # request path (fixed kernels need no timing at all).
            kernels=self.config.edr_kernel == "auto",
        )

    @property
    def fleet(self) -> Optional[ReplicaFleet]:
        """The replica fleet, when serving with ``replicas > 1``."""
        return self._fleet

    def _pruner_chain(self, spec: str) -> List[Pruner]:
        """The built, warmed pruner chain for a canonical spec (cached).

        Called from the dispatch worker (and once from ``warm``); the
        single-worker executor serializes dispatch, so construction
        cannot race with itself.
        """
        chain = self._pruner_chains.get(spec)
        if chain is None:
            chain = build_pruners(
                self.database, spec, matrix_workers=self.config.matrix_workers
            )
            warm_pruners(chain, self.database.trajectories[0])
            self._pruner_chains[spec] = chain
        return chain

    # ------------------------------------------------------------------
    # Live ingest: generation hot-swap
    # ------------------------------------------------------------------
    def reload_if_changed(self):
        """Schedule a hot swap if the ingest root changed on disk.

        Called from the event loop (the ``--follow`` poller) or directly
        from tests.  The swap itself runs on the single dispatch worker,
        so it is serialized with every batch and range computation: a
        query executes wholly against the pre-swap state or wholly
        against the post-swap state, never a mix.  Returns the swap
        future, or ``None`` when nothing changed (or not serving an
        ingest root).
        """
        if self._ingest is None or self._swap_pending:
            return None
        if self._ingest.state_token() == self._disk_token:
            return None
        self._swap_pending = True
        if self._fleet is not None:
            # Fleet mode: a generation change is a rolling deploy — the
            # fleet swaps replicas one at a time onto the new view, so
            # capacity never dips and epochs fence per-client answers.
            return self._executor.submit(self._fleet_redeploy)
        return self._executor.submit(self._hot_swap)

    def _fleet_redeploy(self) -> bool:
        """Dispatch-thread body: roll the fleet onto the new generation."""
        try:
            token = self._ingest.state_token()
            if self._swap_fault_plan is not None:
                from ..core import faults as _faults

                _faults.apply(
                    self._swap_fault_plan.directives("swap:attach", 0),
                    inline=True,
                )
            mutable = self._ingest.open_mutable(
                pool_pages=self.config.store_pool_pages, repair=False
            )
            view = mutable.view()
            self._warm_database(view)
            self._fleet.rolling_deploy(
                FleetSpec(view, self.config, mutable.token)
            )
        except Exception:
            self._swap_failures += 1
            self._swap_pending = False
            raise
        old_mutable = self._mutable
        self._mutable = mutable
        self.database = view
        self._pruner_chains = {}
        self._epoch_token = mutable.token
        self.cache.clear()
        self._disk_token = token
        self._swaps += 1
        self._swap_pending = False
        if old_mutable is not None:
            old_mutable.close()
        return True

    def deploy_database(self, database: TrajectoryDatabase, epoch_token=None):
        """Roll the fleet onto a new corpus (fleet mode only).

        Returns the dispatch-executor future; ``.result()`` is the new
        fleet epoch.  The old corpus keeps serving until each slot's
        replacement is ready, exactly like an ingest-driven deploy.
        """
        if self._fleet is None:
            raise RuntimeError("deploy_database requires replicas > 1")
        token = (
            epoch_token
            if epoch_token is not None
            else f"deploy:{self._fleet.epoch + 1}"
        )
        return self._executor.submit(
            self._deploy_spec, FleetSpec(database, self.config, token)
        )

    def _deploy_spec(self, spec: FleetSpec) -> int:
        self._warm_database(spec.database)
        self._fleet.rolling_deploy(spec)
        self.database = spec.database
        self._pruner_chains = {}
        self._epoch_token = spec.epoch_token
        self.cache.clear()
        return self._fleet.epoch

    def _hot_swap(self) -> bool:
        """Dispatch-thread body: attach the new generation atomically."""
        try:
            token = self._ingest.state_token()
            if self._swap_fault_plan is not None:
                from ..core import faults as _faults

                _faults.apply(
                    self._swap_fault_plan.directives("swap:attach", 0),
                    inline=True,
                )
            mutable = self._ingest.open_mutable(
                pool_pages=self.config.store_pool_pages, repair=False
            )
            view = mutable.view()
            spec = canonical_pruner_spec(self.config.pruners)
            chain = build_pruners(
                view, spec, matrix_workers=self.config.matrix_workers
            )
            warm_pruners(chain, view.trajectories[0])
            sharded = None
            if self.config.shards > 1:
                from ..core.sharding import ShardedDatabase

                refine = self.config.refine_batch_size
                kwargs = {} if refine is None else {"refine_batch_size": refine}
                sharded = ShardedDatabase(
                    view,
                    self.config.shards,
                    specs=[spec],
                    mode="process",
                    workers=self.config.shard_workers,
                    **kwargs,
                )
        except Exception:
            self._swap_failures += 1
            self._swap_pending = False
            raise
        # Publish: plain attribute assignments on the only thread that
        # reads them during compute, so the swap is atomic with respect
        # to every query.
        old_mutable, old_sharded = self._mutable, self._sharded
        self._mutable = mutable
        self.database = view
        self._pruner_chains = {spec: chain}
        self._sharded = sharded
        self._epoch_token = mutable.token
        self.cache.clear()  # stale pre-swap answers must not survive
        self._disk_token = token
        self._swaps += 1
        self._swap_pending = False
        if old_sharded is not None:
            old_sharded.close()
        if old_mutable is not None:
            old_mutable.close()
        return True

    def begin_drain(self) -> None:
        """Stop admitting compute requests (healthz/stats keep answering)."""
        self._draining = True

    async def drain(self) -> bool:
        """Flush pending batches and wait out in-flight work (bounded)."""
        deadline = time.monotonic() + self.config.drain_timeout_s
        completed = await self.batcher.drain(timeout=self.config.drain_timeout_s)
        if self._fleet is not None:
            # Every admitted request must come back from its replica
            # before the fleet is reaped: drain each backlog too.
            completed = (
                await self._fleet.drain(self.config.drain_timeout_s)
                and completed
            )
        while self._inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        return completed and self._inflight == 0

    def close(self) -> None:
        if self._fleet is not None:
            self._fleet.close()
            self._fleet = None
        self._executor.shutdown(wait=False)
        if self._sharded is not None:
            self._sharded.close()
            self._sharded = None
        if self._tiered is not None:
            self._tiered.close()
            self._tiered = None
        if self._mutable is not None:
            self._mutable.close()
            self._mutable = None

    # ------------------------------------------------------------------
    # HTTP-facing entry point
    # ------------------------------------------------------------------
    async def handle(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, dict, dict]:
        route = path.split("?", 1)[0]
        start = time.perf_counter()
        self.metrics.record_request(route)
        try:
            status, payload, headers = await self._dispatch(method, route, body)
        except RequestError as error:
            status, payload, headers = (
                error.status,
                {"error": error.message},
                error.headers,
            )
        except asyncio.TimeoutError:
            status, payload, headers = (
                504,
                {"error": "request timed out"},
                {},
            )
        except Exception as error:  # noqa: BLE001 - last-resort 500
            status, payload, headers = (
                500,
                {"error": f"internal error: {type(error).__name__}: {error}"},
                {},
            )
        self.metrics.record_response(route, status, time.perf_counter() - start)
        return status, payload, headers

    async def _dispatch(
        self, method: str, route: str, body: bytes
    ) -> Tuple[int, dict, dict]:
        if route == "/healthz":
            self._require_method(method, "GET")
            return 200, self._healthz(), {}
        if route == "/stats":
            self._require_method(method, "GET")
            payload = self._stats()
            if self._fleet is not None:
                fleet_section = await self._fleet.stats_async()
                payload["replicas"] = fleet_section
                # The fleet's engine-side totals are the service's
                # search stats — the router itself computes nothing.
                payload["search"] = fleet_section["fleet"]["search"]
            return 200, payload, {}
        if route == "/knn":
            self._require_method(method, "POST")
            return await self._handle_knn(self._json_body(body))
        if route == "/subknn":
            self._require_method(method, "POST")
            return await self._handle_subknn(self._json_body(body))
        if route == "/range":
            self._require_method(method, "POST")
            return await self._handle_range(self._json_body(body))
        if route == "/distance":
            self._require_method(method, "POST")
            return await self._handle_distance(self._json_body(body))
        raise RequestError(404, f"unknown path {route!r}")

    # ------------------------------------------------------------------
    # Introspection endpoints
    # ------------------------------------------------------------------
    def _healthz(self) -> dict:
        degraded = self._sharded is not None and self._sharded.degraded
        fleet_snapshot = (
            self._fleet.snapshot() if self._fleet is not None else None
        )
        if fleet_snapshot is not None:
            degraded = degraded or (
                fleet_snapshot["alive"] < fleet_snapshot["count"]
            )
        if self._draining:
            status = "draining"
        elif degraded:
            status = "degraded"
        else:
            status = "ok"
        payload = {
            "status": status,
            "uptime_seconds": round(self.metrics.uptime_seconds, 3),
            "database_size": len(self.database),
            "epsilon": self.database.epsilon,
        }
        if self._ingest is not None:
            payload["ingest"] = {
                "generation": self._mutable.generation,
                "epoch": self._epoch_token,
                "delta_size": self._mutable.delta_size,
                "swaps": self._swaps,
                "swap_failures": self._swap_failures,
            }
        if fleet_snapshot is not None:
            payload["replicas"] = {
                "count": fleet_snapshot["count"],
                "alive": fleet_snapshot["alive"],
                "epoch": fleet_snapshot["epoch"],
            }
        if self._sharded is not None:
            payload["sharding"] = {
                "degraded": degraded,
                "degraded_queries": self._sharded.resilience()["degraded_queries"],
            }
            if degraded and not self._draining:
                # Probe/revive off the event loop: the single dispatch
                # executor serializes the health check with searches, and
                # a successful check clears the degraded flag so the next
                # /healthz reports recovery.
                self._executor.submit(self._sharded.health_check)
        return payload

    def _stats(self) -> dict:
        snapshot = self.metrics.snapshot()
        snapshot["cache"] = self.cache.snapshot()
        snapshot["admission"] = {
            "queue_limit": self.config.queue_limit,
            "inflight": self._inflight,
            "pending_batched": self.batcher.pending,
            "outstanding_batches": self.batcher.outstanding,
            "draining": self._draining,
        }
        snapshot["database"] = {
            "size": len(self.database),
            "epsilon": self.database.epsilon,
            "ndim": self.database.ndim,
            "max_length": self.database.max_length,
        }
        snapshot["config"] = self.config.public()
        snapshot["kernels"] = kernel_report(
            self.database, self.config.edr_kernel
        )
        snapshot.setdefault("replicas", {})["enabled"] = (
            self._fleet is not None
        )
        sharding = snapshot.setdefault("sharding", {})
        sharding["enabled"] = self._sharded is not None
        if self._sharded is not None:
            sharding["shards"] = self._sharded.shards
            sharding["workers"] = self._sharded.workers
            sharding["mode"] = self._sharded.mode
            sharding["start_method"] = self._sharded.start_method
            sharding["boundaries"] = self._sharded.boundaries
            sharding["resilience"] = self._sharded.resilience()
        storage = snapshot.setdefault("storage", {})
        storage["enabled"] = self._tiered is not None
        if self._tiered is not None:
            storage.update(self._tiered.storage_stats())
        ingest = snapshot.setdefault("ingest", {})
        ingest["enabled"] = self._ingest is not None
        if self._ingest is not None:
            ingest.update(
                {
                    "root": str(self._ingest.root),
                    "generation": self._mutable.generation,
                    "epoch_token": self._epoch_token,
                    "applied_seq": self._mutable.applied_seq,
                    "delta_size": self._mutable.delta_size,
                    "swaps": self._swaps,
                    "swap_failures": self._swap_failures,
                    "follow": self.config.follow,
                }
            )
        return snapshot

    # ------------------------------------------------------------------
    # Query endpoints
    # ------------------------------------------------------------------
    # ------------------------------------------------------------------
    # Fleet dispatch (replicas > 1)
    # ------------------------------------------------------------------
    def _min_epoch(self, request: dict) -> int:
        value = request.get("min_epoch", 0)
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise RequestError(400, "min_epoch must be a non-negative integer")
        return value

    async def _fleet_submit(
        self, op: str, signature: Tuple, payload: dict, min_epoch: int
    ) -> Tuple[dict, dict]:
        """Route one request through the replica fleet (admission on)."""
        self._admit()
        try:
            result, meta = await asyncio.wait_for(
                self._fleet.submit(
                    op, signature, payload, min_epoch=min_epoch
                ),
                timeout=self.config.request_timeout_s,
            )
        except FleetRejection as rejection:
            retry_after = str(max(1, math.ceil(self.config.retry_after_s)))
            raise RequestError(
                503, rejection.message, {"Retry-After": retry_after}
            ) from None
        finally:
            self._release()
        return result, meta

    async def _handle_knn(self, request: dict) -> Tuple[int, dict, dict]:
        query = self._trajectory(request, "query")
        k = self._positive_int(request.get("k", self.config.k_default), "k")
        spec = self._spec(request)
        refine = self.config.refine_batch_size
        if self._fleet is not None:
            signature = (
                "knn",
                query_digest(query.points),
                k,
                spec,
                self.config.engine,
                self.config.early_abandon,
                refine,
                self.config.edr_kernel,
            )
            result, meta = await self._fleet_submit(
                "knn",
                signature,
                {"points": query.points, "k": k, "spec": spec},
                self._min_epoch(request),
            )
            payload = {
                **result,
                "meta": {**meta, "engine": self.config.engine},
            }
            return 200, payload, {}
        cache_key = (
            "knn",
            self._epoch_token,
            query_digest(query.points),
            k,
            spec,
            self.config.engine,
            self.config.early_abandon,
            refine,
            self.config.edr_kernel,
        )
        cached = self.cache.get(cache_key)
        if cached is not None:
            return 200, {**cached, "meta": {"cached": True}}, {}
        self._admit()
        try:
            result, meta = await asyncio.wait_for(
                self.batcher.submit(
                    key=cache_key[3:],  # every answer-shaping parameter
                    digest=cache_key,
                    payload=query,
                    runner=partial(self._run_knn_batch, spec, k),
                ),
                timeout=self.config.request_timeout_s,
            )
        finally:
            self._release()
        self.cache.put(cache_key, result)
        payload = {
            **result,
            "meta": {
                "cached": False,
                "engine": self.config.engine,
                "batch_size": meta["batch_size"],
                "coalesced": meta["coalesced"],
            },
        }
        return 200, payload, {}

    def _run_knn_batch(
        self, spec: str, k: int, queries: Sequence[Trajectory]
    ) -> List[dict]:
        """Dispatch-thread body: one ``knn_batch`` call for the window."""
        pruners = self._pruner_chain(spec)
        sharded = self._sharded
        if (
            sharded is not None
            and self.config.engine != "scan"
            and pruners
            and sharded.supports(spec)
        ):
            # Intra-query parallelism: the resident shard engine answers
            # each query across the whole pool (answers unchanged).
            batch = knn_batch(
                self.database,
                queries,
                k,
                pruners,
                engine=self.config.engine,
                early_abandon=self.config.early_abandon,
                refine_batch_size=self.config.refine_batch_size,
                sharded=sharded,
                edr_kernel=self.config.edr_kernel,
            )
        else:
            batch = knn_batch(
                self.database,
                queries,
                k,
                pruners,
                engine=self.config.engine,
                workers=self.config.batch_workers,
                executor=self.config.batch_executor,
                early_abandon=self.config.early_abandon,
                refine_batch_size=self.config.refine_batch_size,
                edr_kernel=self.config.edr_kernel,
            )
        self.metrics.record_search_stats(
            batch.stats, seconds=batch.elapsed_seconds
        )
        return [
            {
                "neighbors": _neighbors_payload(neighbors),
                "stats": _stats_payload(stats),
            }
            for neighbors, stats in batch
        ]

    async def _handle_subknn(self, request: dict) -> Tuple[int, dict, dict]:
        query = self._trajectory(request, "query")
        k = self._positive_int(request.get("k", self.config.k_default), "k")
        spec = self._spec(request)
        alpha = self._alpha(request)
        refine = self.config.refine_batch_size
        if self._fleet is not None:
            signature = (
                "subknn",
                query_digest(query.points),
                k,
                alpha,
                spec,
                self.config.early_abandon,
                refine,
                self.config.edr_kernel,
            )
            result, meta = await self._fleet_submit(
                "subknn",
                signature,
                {"points": query.points, "k": k, "alpha": alpha, "spec": spec},
                self._min_epoch(request),
            )
            payload = {
                **result,
                "meta": {**meta, "engine": "subknn"},
            }
            return 200, payload, {}
        cache_key = (
            "subknn",
            self._epoch_token,
            query_digest(query.points),
            k,
            alpha,
            spec,
            self.config.early_abandon,
            refine,
            self.config.edr_kernel,
        )
        cached = self.cache.get(cache_key)
        if cached is not None:
            return 200, {**cached, "meta": {"cached": True}}, {}
        self._admit()
        try:
            result, meta = await asyncio.wait_for(
                self.batcher.submit(
                    key=cache_key[3:],  # every answer-shaping parameter
                    digest=cache_key,
                    payload=query,
                    runner=partial(self._run_subknn_batch, spec, k, alpha),
                ),
                timeout=self.config.request_timeout_s,
            )
        finally:
            self._release()
        self.cache.put(cache_key, result)
        payload = {
            **result,
            "meta": {
                "cached": False,
                "engine": "subknn",
                "batch_size": meta["batch_size"],
                "coalesced": meta["coalesced"],
            },
        }
        return 200, payload, {}

    def _run_subknn_batch(
        self, spec: str, k: int, alpha: float, queries: Sequence[Trajectory]
    ) -> List[dict]:
        """Dispatch-thread body: one window-mode ``knn_batch`` call."""
        pruners = self._pruner_chain(spec)
        sharded = self._sharded
        if sharded is not None and sharded.supports(spec):
            batch = knn_batch(
                self.database,
                queries,
                k,
                pruners,
                engine=self.config.engine,
                early_abandon=self.config.early_abandon,
                refine_batch_size=self.config.refine_batch_size,
                sharded=sharded,
                edr_kernel=self.config.edr_kernel,
                sub=True,
                alpha=alpha,
            )
        else:
            batch = knn_batch(
                self.database,
                queries,
                k,
                pruners,
                engine=self.config.engine,
                workers=self.config.batch_workers,
                executor=self.config.batch_executor,
                early_abandon=self.config.early_abandon,
                refine_batch_size=self.config.refine_batch_size,
                edr_kernel=self.config.edr_kernel,
                sub=True,
                alpha=alpha,
            )
        self.metrics.record_search_stats(
            batch.stats, seconds=batch.elapsed_seconds
        )
        return [
            {
                "matches": _windows_payload(matches),
                "stats": _stats_payload(stats),
            }
            for matches, stats in batch
        ]

    async def _handle_range(self, request: dict) -> Tuple[int, dict, dict]:
        query = self._trajectory(request, "query")
        radius = self._radius(request)
        spec = self._spec(request)
        if self._fleet is not None:
            signature = (
                "range",
                query_digest(query.points),
                radius,
                spec,
                self.config.early_abandon,
                self.config.refine_batch_size,
                self.config.edr_kernel,
            )
            result, meta = await self._fleet_submit(
                "range",
                signature,
                {"points": query.points, "radius": radius, "spec": spec},
                self._min_epoch(request),
            )
            return 200, {**result, "meta": meta}, {}
        cache_key = (
            "range",
            self._epoch_token,
            query_digest(query.points),
            radius,
            spec,
            self.config.early_abandon,
            self.config.refine_batch_size,
            self.config.edr_kernel,
        )
        cached = self.cache.get(cache_key)
        if cached is not None:
            return 200, {**cached, "meta": {"cached": True}}, {}
        self._admit()
        try:
            loop = asyncio.get_running_loop()
            result = await asyncio.wait_for(
                loop.run_in_executor(
                    self._executor,
                    partial(self._run_range, spec, radius, query),
                ),
                timeout=self.config.request_timeout_s,
            )
        finally:
            self._release()
        self.cache.put(cache_key, result)
        return 200, {**result, "meta": {"cached": False}}, {}

    def _run_range(self, spec: str, radius: float, query: Trajectory) -> dict:
        pruners = self._pruner_chain(spec)
        results, stats = range_search(
            self.database,
            query,
            radius,
            pruners,
            early_abandon=self.config.early_abandon,
            refine_batch_size=self.config.refine_batch_size,
            edr_kernel=self.config.edr_kernel,
        )
        self.metrics.record_search_stats([stats])
        return {
            "results": _neighbors_payload(results),
            "stats": _stats_payload(stats),
        }

    async def _handle_distance(self, request: dict) -> Tuple[int, dict, dict]:
        first = self._trajectory(request, "first")
        second = self._trajectory(request, "second")
        name = str(request.get("function", "edr")).lower()
        if name not in available_distances():
            raise RequestError(
                400,
                f"unknown distance function {name!r}; "
                f"known: {', '.join(available_distances())}",
            )
        epsilon: Optional[float] = None
        if name in EPSILON_FUNCTIONS:
            raw = request.get("epsilon", self.database.epsilon)
            try:
                epsilon = float(raw)
            except (TypeError, ValueError):
                raise RequestError(400, "epsilon must be a number") from None
            if epsilon < 0.0 or not math.isfinite(epsilon):
                raise RequestError(400, "epsilon must be non-negative and finite")
        if self._fleet is not None:
            signature = (
                "distance",
                query_digest(first.points),
                query_digest(second.points),
                name,
                epsilon,
            )
            result, meta = await self._fleet_submit(
                "distance",
                signature,
                {
                    "first": first.points,
                    "second": second.points,
                    "function": name,
                    "epsilon": epsilon,
                },
                self._min_epoch(request),
            )
            return 200, {**result, "meta": meta}, {}
        self._admit()
        try:
            loop = asyncio.get_running_loop()
            value = await asyncio.wait_for(
                loop.run_in_executor(
                    self._executor,
                    partial(_compute_distance, name, first, second, epsilon),
                ),
                timeout=self.config.request_timeout_s,
            )
        finally:
            self._release()
        payload = {"distance": value, "function": name}
        if epsilon is not None:
            payload["epsilon"] = epsilon
        return 200, payload, {}

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        retry_after = str(max(1, math.ceil(self.config.retry_after_s)))
        if self._draining:
            raise RequestError(
                503, "server is draining", {"Retry-After": retry_after}
            )
        if (
            self.config.reject_on_degraded
            and self._sharded is not None
            and self._sharded.degraded
        ):
            raise RequestError(
                503,
                "sharded engine is degraded (serial fallback active)",
                {"Retry-After": retry_after},
            )
        if self._inflight >= self.config.queue_limit:
            raise RequestError(
                503,
                f"server overloaded ({self._inflight} requests in flight)",
                {"Retry-After": retry_after},
            )
        self._inflight += 1

    def _release(self) -> None:
        self._inflight -= 1

    # ------------------------------------------------------------------
    # Request parsing
    # ------------------------------------------------------------------
    @staticmethod
    def _require_method(method: str, expected: str) -> None:
        if method != expected:
            raise RequestError(405, f"method {method} not allowed (use {expected})")

    @staticmethod
    def _json_body(body: bytes) -> dict:
        if not body:
            raise RequestError(400, "request body must be a JSON object")
        try:
            request = json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RequestError(400, f"invalid JSON body: {error}") from None
        if not isinstance(request, dict):
            raise RequestError(400, "request body must be a JSON object")
        return request

    def _trajectory(self, request: dict, field: str) -> Trajectory:
        value = request.get(field)
        if value is None:
            raise RequestError(400, f"missing required field {field!r}")
        if isinstance(value, bool):
            raise RequestError(400, f"{field} must be an index or a point list")
        if isinstance(value, int):
            if not 0 <= value < len(self.database):
                raise RequestError(
                    400,
                    f"{field} index {value} out of range "
                    f"[0, {len(self.database)})",
                )
            return self.database.trajectories[value]
        try:
            points = np.asarray(value, dtype=np.float64)
        except (TypeError, ValueError):
            raise RequestError(
                400, f"{field} must be a database index or a list of points"
            ) from None
        if points.ndim != 2 or points.shape[0] < 1:
            raise RequestError(
                400, f"{field} must be a non-empty list of points"
            )
        if points.shape[1] != self.database.ndim:
            raise RequestError(
                400,
                f"{field} arity {points.shape[1]} does not match "
                f"database arity {self.database.ndim}",
            )
        if not np.isfinite(points).all():
            raise RequestError(400, f"{field} contains non-finite coordinates")
        return Trajectory(points)

    def _spec(self, request: dict) -> str:
        raw = request.get("pruners", self.config.pruners)
        if not isinstance(raw, str):
            raise RequestError(400, "pruners must be a comma-separated string")
        try:
            return canonical_pruner_spec(raw)
        except ValueError as error:
            raise RequestError(400, str(error)) from None

    @staticmethod
    def _positive_int(value: object, field: str) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise RequestError(400, f"{field} must be a positive integer")
        if value < 1:
            raise RequestError(400, f"{field} must be at least 1")
        return value

    @staticmethod
    def _alpha(request: dict) -> float:
        value = request.get("alpha", DEFAULT_WINDOW_ALPHA)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise RequestError(400, "alpha must be a number")
        alpha = float(value)
        if alpha < 0.0 or not math.isfinite(alpha):
            raise RequestError(400, "alpha must be non-negative and finite")
        return alpha

    def _radius(self, request: dict) -> float:
        value = request.get("radius")
        if value is None:
            raise RequestError(400, "missing required field 'radius'")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise RequestError(400, "radius must be a number")
        radius = float(value)
        if radius < 0.0 or not math.isfinite(radius):
            raise RequestError(400, "radius must be non-negative and finite")
        return radius


# ----------------------------------------------------------------------
# Payload shaping
# ----------------------------------------------------------------------
def _neighbors_payload(neighbors: Sequence[Neighbor]) -> List[dict]:
    return [
        {"index": int(neighbor.index), "distance": float(neighbor.distance)}
        for neighbor in neighbors
    ]


def _windows_payload(matches: Sequence[WindowMatch]) -> List[dict]:
    return [
        {
            "index": int(match.index),
            "start": int(match.start),
            "end": int(match.end),
            "distance": float(match.distance),
        }
        for match in matches
    ]


def _stats_payload(stats: SearchStats) -> dict:
    payload = {
        "database_size": stats.database_size,
        "true_distance_computations": stats.true_distance_computations,
        "pruning_power": round(stats.pruning_power, 6),
        "pruned_by": dict(stats.pruned_by),
        "elapsed_seconds": round(stats.elapsed_seconds, 6),
    }
    if stats.windows_total:
        payload["windows_total"] = stats.windows_total
        payload["windows_evaluated"] = stats.windows_evaluated
        payload["windows_pruned"] = stats.windows_pruned
        payload["windows_abandoned"] = stats.windows_abandoned
    if stats.bytes_touched or stats.pages_read:
        payload["bytes_touched"] = stats.bytes_touched
        payload["pages_read"] = stats.pages_read
        payload["pool_hit_rate"] = round(stats.pool_hit_rate, 6)
    return payload


def _compute_distance(
    name: str,
    first: Trajectory,
    second: Trajectory,
    epsilon: Optional[float],
) -> float:
    function = get_distance(name)
    if epsilon is not None:
        return float(function(first, second, epsilon))
    return float(function(first, second))
