"""Closed-loop load generator for the query service (``bench-serve``).

Measures served k-NN throughput with micro-batching on versus off, on
one in-process server per run (real HTTP over loopback, keep-alive
connections, one closed-loop client thread per simulated client).

Methodology
-----------
* Two request mixes, both precomputed so every run serves the identical
  request stream:

  - ``skewed`` — clients draw from a pool of distinct queries under a
    Zipf law, the classic hot-query traffic shape.  This is where the
    micro-batcher's in-window duplicate coalescing pays: one
    computation answers every copy of a hot query that lands in the
    same batch window.
  - ``distinct`` — every request is a different query (no duplicates
    anywhere), isolating the pure batch-dispatch effect (amortized
    dispatch and, on multi-core hosts, ``knn_batch``'s thread-parallel
    fan-out; on a single core this leg is expected to be near 1x).

* The result cache is disabled by default (``--cache-size 0``) so the
  comparison isolates the batcher; caching helps both modes equally and
  across-window repeats would otherwise mask it.
* Before timing, served ``/knn`` responses are asserted equal — ids,
  distances, tie order — to direct :func:`repro.knn_search` calls on
  the same database and parameters (a benchmark that compares different
  answers measures nothing).

Results are printed as a table, written to ``BENCH_service.json``, and
mirrored to ``benchmarks/results/service.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.batch import warm_pruners
from ..core.database import TrajectoryDatabase
from ..core.matching import suggest_epsilon
from ..core.search import knn_search
from ..core.trajectory import Trajectory
from .client import ServiceClient
from .config import ServiceConfig
from .pruning import build_pruners
from .server import ServerHandle

__all__ = ["add_arguments", "run", "main"]


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--file", default=None, help="trajectory .npz/.csv (default: generate)"
    )
    parser.add_argument("--count", type=int, default=2000)
    parser.add_argument("--min-length", type=int, default=20)
    parser.add_argument("--max-length", type=int, default=60)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--epsilon", type=float, default=None)
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--pruners", default="histogram,qgram")
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument(
        "--requests", type=int, default=8, help="requests per client per run"
    )
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--max-delay-ms", type=float, default=25.0)
    parser.add_argument("--cache-size", type=int, default=0)
    parser.add_argument(
        "--pool", type=int, default=48, help="distinct queries in the skewed pool"
    )
    parser.add_argument(
        "--zipf", type=float, default=1.6, help="Zipf exponent of the skewed mix"
    )
    parser.add_argument(
        "--workloads",
        default="skewed,distinct",
        help="comma list from: skewed, distinct",
    )
    parser.add_argument(
        "--oracle-probes", type=int, default=3,
        help="served-vs-direct equality probes before timing",
    )
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument(
        "--results-table", default="benchmarks/results/service.txt"
    )


def _make_database(args: argparse.Namespace) -> TrajectoryDatabase:
    if args.file:
        from ..data import load_csv, load_npz

        trajectories = (
            load_csv(args.file) if args.file.endswith(".csv") else load_npz(args.file)
        )
    else:
        rng = np.random.default_rng(args.seed)
        trajectories = [
            Trajectory(
                np.cumsum(
                    rng.normal(
                        size=(int(rng.integers(args.min_length, args.max_length)), 2)
                    ),
                    axis=0,
                )
            )
            for _ in range(args.count)
        ]
    epsilon = args.epsilon if args.epsilon is not None else suggest_epsilon(trajectories)
    return TrajectoryDatabase(trajectories, epsilon)


def _zipf_weights(pool: int, exponent: float) -> np.ndarray:
    weights = 1.0 / np.arange(1, pool + 1, dtype=np.float64) ** exponent
    return weights / weights.sum()


def _sequences(
    workload: str, args: argparse.Namespace, database_size: int
) -> List[List[int]]:
    """Per-client query-index sequences, identical across compared runs."""
    rng = np.random.default_rng(args.seed + 1)
    total = args.clients * args.requests
    if workload == "skewed":
        pool_size = min(args.pool, database_size)
        pool = rng.choice(database_size, size=pool_size, replace=False)
        weights = _zipf_weights(pool_size, args.zipf)
        draws = pool[rng.choice(pool_size, size=total, p=weights)]
    elif workload == "distinct":
        draws = rng.choice(
            database_size, size=min(total, database_size), replace=False
        )
        draws = np.resize(draws, total)  # repeats only if db < total
    else:
        raise SystemExit(f"unknown workload {workload!r}")
    return [
        [int(index) for index in draws[client :: args.clients]]
        for client in range(args.clients)
    ]


def _assert_oracle(
    handle: ServerHandle,
    database: TrajectoryDatabase,
    args: argparse.Namespace,
    probe_indices: Sequence[int],
) -> None:
    """Served /knn must equal direct knn_search byte-for-byte."""
    pruners = build_pruners(database, args.pruners)
    warm_pruners(pruners, database.trajectories[0])
    with ServiceClient(handle.host, handle.port, timeout=600.0) as client:
        for index in probe_indices:
            query = database.trajectories[index]
            served = client.knn(query, k=args.k)["neighbors"]
            expected, _ = knn_search(database, query, args.k, pruners)
            direct = [
                {"index": int(n.index), "distance": float(n.distance)}
                for n in expected
            ]
            if served != direct:
                raise AssertionError(
                    f"served /knn diverged from knn_search for query {index}: "
                    f"{served} != {direct}"
                )


def _run_mode(
    database: TrajectoryDatabase,
    args: argparse.Namespace,
    sequences: List[List[int]],
    max_batch: int,
    oracle_probes: Sequence[int],
) -> dict:
    config = ServiceConfig(
        port=0,
        pruners=args.pruners,
        engine="search",
        k_default=args.k,
        max_batch=max_batch,
        max_delay_ms=args.max_delay_ms,
        cache_size=args.cache_size,
        queue_limit=4 * args.clients + 8,
        request_timeout_s=600.0,
    )
    handle = ServerHandle.start(database, config)
    try:
        if oracle_probes:
            _assert_oracle(handle, database, args, oracle_probes)
        barrier = threading.Barrier(args.clients + 1)
        latencies: List[List[float]] = [[] for _ in range(args.clients)]
        errors: List[BaseException] = []

        def client_loop(position: int) -> None:
            sequence = sequences[position]
            try:
                with ServiceClient(
                    handle.host, handle.port, timeout=600.0
                ) as client:
                    barrier.wait()
                    for index in sequence:
                        points = database.trajectories[index].points.tolist()
                        begin = time.perf_counter()
                        client.knn(points, k=args.k)
                        latencies[position].append(time.perf_counter() - begin)
            except BaseException as error:  # surfaced after join
                errors.append(error)

        threads = [
            threading.Thread(target=client_loop, args=(position,), daemon=True)
            for position in range(args.clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start
        if errors:
            raise errors[0]
        with ServiceClient(handle.host, handle.port) as client:
            stats = client.stats()
    finally:
        handle.stop()

    flat = sorted(value for per_client in latencies for value in per_client)
    requests = len(flat)

    def percentile(fraction: float) -> float:
        rank = min(len(flat) - 1, max(0, int(fraction * len(flat))))
        return round(flat[rank] * 1000.0, 2)

    batcher = stats["batcher"]
    search = stats["search"]
    return {
        "max_batch": max_batch,
        "requests": requests,
        "wall_seconds": round(wall, 3),
        "throughput_rps": round(requests / wall, 3) if wall > 0 else float("inf"),
        "latency_ms": {
            "mean": round(sum(flat) / requests * 1000.0, 2),
            "p50": percentile(0.50),
            "p90": percentile(0.90),
            "p99": percentile(0.99),
        },
        "batches": batcher["batches"],
        "mean_batch_size": batcher["mean_batch_size"],
        "coalesced": batcher["coalesced"],
        "unique_computed": batcher["unique_computed"],
        "true_distance_computations": search["true_distance_computations"],
        "pruning_power": search["pruning_power"],
    }


def _table(results: dict) -> str:
    lines = [
        f"{'workload':<10} {'max_batch':>9} {'reqs':>5} {'wall_s':>8} "
        f"{'rps':>8} {'p50_ms':>8} {'p99_ms':>9} {'mean_batch':>10} "
        f"{'coalesced':>9} {'computed':>8}"
    ]
    for workload, record in results["workloads"].items():
        for run in record["runs"]:
            lines.append(
                f"{workload:<10} {run['max_batch']:>9} {run['requests']:>5} "
                f"{run['wall_seconds']:>8.2f} {run['throughput_rps']:>8.2f} "
                f"{run['latency_ms']['p50']:>8.1f} "
                f"{run['latency_ms']['p99']:>9.1f} "
                f"{run['mean_batch_size']:>10.2f} {run['coalesced']:>9} "
                f"{run['unique_computed']:>8}"
            )
        lines.append(
            f"{workload:<10} micro-batching speedup: "
            f"{record['speedup']:.2f}x (throughput, max_batch="
            f"{record['runs'][-1]['max_batch']} vs 1)"
        )
    lines.append(
        f"headline speedup ({results['headline_workload']}): "
        f"{results['speedup']:.2f}x on {results['host']['cpus']} cpu(s); "
        "answers oracle-asserted against knn_search"
    )
    return "\n".join(lines)


def run(args: argparse.Namespace) -> dict:
    database = _make_database(args)
    print(
        f"database: {len(database)} trajectories, epsilon={database.epsilon:.4f}; "
        f"clients={args.clients}, requests/client={args.requests}, k={args.k}"
    )
    # Warm the shared artifacts once so both modes start from warm indexes.
    database.warm(q=1, histogram_bins=1.0, per_axis=False)

    workloads = [
        name.strip() for name in args.workloads.split(",") if name.strip()
    ]
    probe_indices = list(range(min(args.oracle_probes, len(database))))
    results: Dict[str, object] = {
        "benchmark": "service_microbatching",
        "host": {"cpus": os.cpu_count() or 1},
        "dataset": {
            "source": args.file or "random-walk",
            "count": len(database),
            "min_length": args.min_length,
            "max_length": args.max_length,
            "epsilon": database.epsilon,
            "seed": args.seed,
        },
        "serving": {
            "pruners": args.pruners,
            "engine": "search",
            "k": args.k,
            "max_delay_ms": args.max_delay_ms,
            "cache_size": args.cache_size,
            "clients": args.clients,
            "requests_per_client": args.requests,
        },
        "workloads": {},
        "oracle": (
            f"served /knn equals direct knn_search (ids, distances, tie "
            f"order) on {len(probe_indices)} probe(s) per run"
        ),
    }
    for workload in workloads:
        sequences = _sequences(workload, args, len(database))
        record: Dict[str, object] = {"runs": []}
        if workload == "skewed":
            record["pool"] = min(args.pool, len(database))
            record["zipf_exponent"] = args.zipf
        for max_batch in (1, args.max_batch):
            print(f"[{workload}] max_batch={max_batch} ...", flush=True)
            outcome = _run_mode(
                database, args, sequences, max_batch, probe_indices
            )
            record["runs"].append(outcome)
            print(
                f"[{workload}] max_batch={max_batch}: "
                f"{outcome['throughput_rps']:.2f} rps, "
                f"p50={outcome['latency_ms']['p50']:.0f}ms, "
                f"coalesced={outcome['coalesced']}"
            )
        baseline, batched = record["runs"]
        record["speedup"] = round(
            batched["throughput_rps"] / baseline["throughput_rps"], 3
        )
        results["workloads"][workload] = record

    headline = "skewed" if "skewed" in results["workloads"] else workloads[0]
    results["headline_workload"] = headline
    results["speedup"] = results["workloads"][headline]["speedup"]

    table = _table(results)
    print(table)

    out_path = Path(args.out)
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out_path}")
    table_path = Path(args.results_table)
    table_path.parent.mkdir(parents=True, exist_ok=True)
    table_path.write_text(table + "\n")
    print(f"wrote {table_path}")
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="closed-loop load benchmark of the trajectory query service"
    )
    add_arguments(parser)
    run(parser.parse_args(argv))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
