"""Pruner-chain construction from a comma-separated spec string.

The CLI and the query service share one syntax for choosing a pruner
chain (``"histogram,qgram"``...).  The service additionally needs a
*canonical* form of the spec, because it keys built pruner chains and
cached results on it — ``" qgram, histogram "`` and ``"qgram,histogram"``
must hit the same chain.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.database import TrajectoryDatabase
from ..core.search import (
    HistogramPruner,
    NearTrianglePruning,
    Pruner,
    QgramMergeJoinPruner,
)

__all__ = ["PRUNER_CHOICES", "build_pruners", "canonical_pruner_spec"]

PRUNER_CHOICES = ("histogram", "histogram-1d", "qgram", "nti", "none")


def canonical_pruner_spec(spec: str) -> str:
    """Normalize a spec: trim parts, drop empties and ``none``, keep order.

    Order is preserved (pruner order matters to the engines), so two
    specs are equivalent exactly when their canonical forms are equal.
    Unknown names are rejected here, before any construction work.
    """
    parts: List[str] = []
    for part in (piece.strip() for piece in spec.split(",")):
        if not part or part == "none":
            continue
        if part not in PRUNER_CHOICES:
            raise ValueError(
                f"unknown pruner {part!r}; choose from {', '.join(PRUNER_CHOICES)}"
            )
        parts.append(part)
    return ",".join(parts)


def build_pruners(
    database: TrajectoryDatabase,
    spec: str,
    matrix_workers: Optional[int] = None,
    max_triangle: int = 50,
) -> List[Pruner]:
    """Build the pruner chain named by ``spec`` against ``database``.

    Raises :class:`ValueError` on unknown names — callers decide whether
    that is a CLI exit or an HTTP 400.
    """
    pruners: List[Pruner] = []
    for name in filter(None, canonical_pruner_spec(spec).split(",")):
        if name == "histogram":
            pruners.append(HistogramPruner(database))
        elif name == "histogram-1d":
            pruners.append(HistogramPruner(database, per_axis=True))
        elif name == "qgram":
            pruners.append(QgramMergeJoinPruner(database, q=1))
        elif name == "nti":
            pruners.append(
                NearTrianglePruning(
                    database,
                    max_triangle=max_triangle,
                    matrix_workers=matrix_workers,
                )
            )
    return pruners
