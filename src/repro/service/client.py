"""Thin synchronous client for the trajectory query service.

``http.client`` over one keep-alive connection — the closed-loop load
generator runs one :class:`ServiceClient` per worker thread, so the
connection is reused across a client's whole request stream.  The class
is not thread-safe; give each thread its own instance.

Non-2xx responses raise :class:`ServiceError` carrying the HTTP status,
the decoded error payload, and — for 503 admission refusals — the
server's ``Retry-After`` hint in seconds.

With ``retries > 0`` the client retries transient failures — connection
errors, socket timeouts, dropped keep-alives, and 503 admission refusals
— with exponential backoff (capped), honouring the server's
``Retry-After`` hint when one is present.  The default stays ``0``: the
load benchmark must observe rejections, not paper over them.

Against a replicated server the client also tracks **epochs**: fleet
responses carry the answering replica's deploy epoch in ``meta``, the
client remembers the largest epoch it has seen, and echoes it back as
``min_epoch`` so the router never routes it to a not-yet-swapped
replica during a rolling deploy — one client never observes answers
from mixed epochs.  Single-process servers carry no epoch and are
unaffected.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Optional, Union

import numpy as np

from ..core.trajectory import Trajectory

__all__ = ["ServiceClient", "ServiceError"]

QueryLike = Union[int, Trajectory, np.ndarray, list]


class ServiceError(Exception):
    """A non-2xx service response."""

    def __init__(
        self,
        status: int,
        payload: dict,
        retry_after: Optional[float] = None,
    ) -> None:
        message = payload.get("error", f"HTTP {status}")
        super().__init__(f"{status}: {message}")
        self.status = status
        self.payload = payload
        self.retry_after = retry_after


def _query_value(query: QueryLike) -> object:
    """JSON form of a query: a database index or a list of points."""
    if isinstance(query, bool):
        raise TypeError("query must be an index, Trajectory, or point array")
    if isinstance(query, (int, np.integer)):
        return int(query)
    if isinstance(query, Trajectory):
        return query.points.tolist()
    return np.asarray(query, dtype=np.float64).tolist()


#: Transport-level failures eligible for request-level retry.
_TRANSIENT_ERRORS = (ConnectionError, socket.timeout, http.client.HTTPException)


class ServiceClient:
    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float = 60.0,
        retries: int = 0,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        track_epoch: bool = True,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.track_epoch = bool(track_epoch)
        #: Largest fleet epoch observed in a response ``meta`` (0 until
        #: a replicated server answers).
        self.last_epoch = 0
        self._connection: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> dict:
        """One logical request, with up to ``retries`` re-sends.

        Transport errors and 503 refusals back off exponentially from
        ``backoff_s`` (capped at ``backoff_cap_s``); a 503 carrying a
        ``Retry-After`` hint sleeps that long instead (same cap).  Any
        other :class:`ServiceError` (4xx semantics, 500s) is not
        transient and raises immediately.
        """
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload)
            except ServiceError as error:
                if error.status != 503 or attempt >= self.retries:
                    raise
                delay = self._backoff(attempt, hint=error.retry_after)
            except _TRANSIENT_ERRORS:
                self.close()
                if attempt >= self.retries:
                    raise
                delay = self._backoff(attempt)
            attempt += 1
            if delay > 0.0:
                time.sleep(delay)

    def _backoff(self, attempt: int, hint: Optional[float] = None) -> float:
        delay = self.backoff_s * (2 ** attempt)
        if hint is not None:
            delay = max(delay, hint)
        return min(delay, self.backoff_cap_s)

    def _request_once(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> dict:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except (
                http.client.RemoteDisconnected,
                http.client.CannotSendRequest,
                ConnectionResetError,
                BrokenPipeError,
            ):
                # A dropped keep-alive connection gets one clean retry.
                self.close()
                if attempt:
                    raise
            except socket.timeout:
                self.close()
                raise
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            decoded = {"error": raw.decode("utf-8", "replace")}
        if not 200 <= response.status < 300:
            retry_after: Optional[float] = None
            header = response.getheader("Retry-After")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    pass
            raise ServiceError(response.status, decoded, retry_after)
        if self.track_epoch and isinstance(decoded, dict):
            meta = decoded.get("meta")
            if isinstance(meta, dict):
                epoch = meta.get("epoch")
                if isinstance(epoch, int) and not isinstance(epoch, bool):
                    self.last_epoch = max(self.last_epoch, epoch)
        return decoded

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def knn(
        self,
        query: QueryLike,
        k: Optional[int] = None,
        pruners: Optional[str] = None,
    ) -> dict:
        payload: dict = {"query": _query_value(query)}
        if k is not None:
            payload["k"] = k
        if pruners is not None:
            payload["pruners"] = pruners
        if self.track_epoch and self.last_epoch:
            payload["min_epoch"] = self.last_epoch
        return self._request("POST", "/knn", payload)

    def subknn(
        self,
        query: QueryLike,
        k: Optional[int] = None,
        pruners: Optional[str] = None,
        alpha: Optional[float] = None,
    ) -> dict:
        payload: dict = {"query": _query_value(query)}
        if k is not None:
            payload["k"] = k
        if pruners is not None:
            payload["pruners"] = pruners
        if alpha is not None:
            payload["alpha"] = alpha
        if self.track_epoch and self.last_epoch:
            payload["min_epoch"] = self.last_epoch
        return self._request("POST", "/subknn", payload)

    def range_query(
        self,
        query: QueryLike,
        radius: float,
        pruners: Optional[str] = None,
    ) -> dict:
        payload: dict = {"query": _query_value(query), "radius": radius}
        if pruners is not None:
            payload["pruners"] = pruners
        if self.track_epoch and self.last_epoch:
            payload["min_epoch"] = self.last_epoch
        return self._request("POST", "/range", payload)

    def distance(
        self,
        first: QueryLike,
        second: QueryLike,
        function: str = "edr",
        epsilon: Optional[float] = None,
    ) -> dict:
        payload: dict = {
            "first": _query_value(first),
            "second": _query_value(second),
            "function": function,
        }
        if epsilon is not None:
            payload["epsilon"] = epsilon
        return self._request("POST", "/distance", payload)
