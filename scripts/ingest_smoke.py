"""Ingest smoke test: init → insert → compact → serve → query.

Drives the full streaming-ingest lifecycle out of core: initialise an
ingest root from a synthetic corpus, append inserts and a delete through
the write-ahead log, compact the delta into a new immutable generation,
then start the query service *from the root* (``ingest_root`` source)
and assert over real HTTP that every ``/knn`` answer is byte-for-byte
what the serial in-memory engine computes over the same logical corpus,
and that ``/healthz`` reports the ingest section.  A live hot-swap is
exercised too: mutate + compact while the server runs, trigger
``reload_if_changed``, and require the post-swap answers to match the
new corpus's cold oracle.  Exits non-zero on any divergence, so CI and
``scripts/run_all.sh`` can gate on it.

    PYTHONPATH=src python scripts/ingest_smoke.py
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import Trajectory, TrajectoryDatabase, knn_search
from repro.ingest import IngestRoot, compact
from repro.service import ServerHandle, ServiceClient, ServiceConfig
from repro.service.pruning import build_pruners

EPSILON = 0.5
K = 5
SPEC = "histogram,qgram"


def _trajectories(count: int, seed: int = 11) -> list:
    rng = np.random.default_rng(seed)
    return [
        Trajectory(
            np.cumsum(rng.normal(size=(int(rng.integers(15, 50)), 2)), axis=0)
        )
        for _ in range(count)
    ]


def _oracle(root: IngestRoot, queries) -> list:
    """Cold-built serial answers for the root's current logical corpus."""
    mutable = root.open_mutable()
    try:
        snapshot, _ = mutable.snapshot()
        cold = TrajectoryDatabase(
            [Trajectory(np.array(t.points)) for t in snapshot], EPSILON
        )
    finally:
        mutable.close()
    pruners = build_pruners(cold, SPEC)
    answers = []
    for query in queries:
        neighbors, _ = knn_search(cold, query, K, pruners)
        answers.append(
            [
                {"index": int(n.index), "distance": float(n.distance)}
                for n in neighbors
            ]
        )
    return answers


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=120)
    args = parser.parse_args()

    trajectories = _trajectories(args.count)
    extra = _trajectories(12, seed=12)
    queries = [trajectories[index] for index in (0, 41, 87)]

    with tempfile.TemporaryDirectory(prefix="ingest_smoke_") as tmp:
        root = IngestRoot.init(Path(tmp) / "root", trajectories, EPSILON)

        # Mutate through the WAL, then fold the delta into gen-000001.
        mutable = root.open_mutable()
        for trajectory in extra[:6]:
            mutable.insert(trajectory)
        mutable.delete(3)
        mutable.close()
        compact(root)
        generation, epoch, _ = root.state_token()
        print(f"compacted to {generation} (epoch {epoch})")
        if generation != "gen-000001":
            print(f"FAIL: unexpected generation {generation}")
            return 1

        expected = _oracle(root, queries)
        config = ServiceConfig(
            port=0,
            max_batch=1,
            cache_size=32,
            ingest_root=str(root.root),
            pruners=SPEC,
        )
        with ServerHandle.start(None, config) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                # Absolute size check: consistency-only comparisons
                # cannot catch mutations that BOTH sides silently drop.
                size = client.knn(queries[0], k=K)["stats"]["database_size"]
                if size != args.count + 6 - 1:
                    print(f"FAIL: served corpus size {size}, expected "
                          f"{args.count + 6 - 1}")
                    return 1
                for index, query in enumerate(queries):
                    got = client.knn(query, k=K)["neighbors"]
                    if got != expected[index]:
                        print(
                            f"FAIL: /knn diverged from serial engine at "
                            f"query {index}: {got} != {expected[index]}"
                        )
                        return 1
                health = client.healthz()
                ingest = health.get("ingest", {})
                if ingest.get("generation") != "gen-000001":
                    print(f"FAIL: /healthz ingest section wrong: {ingest}")
                    return 1

                # Live mutate + compact + hot swap under the server.
                mutable = root.open_mutable()
                for trajectory in extra[6:]:
                    mutable.insert(trajectory)
                mutable.close()
                compact(root)
                future = handle.service.reload_if_changed()
                if future is None or not future.result(timeout=120):
                    print("FAIL: hot swap did not run")
                    return 1
                expected = _oracle(root, queries)
                size = client.knn(queries[0], k=K)["stats"]["database_size"]
                if size != args.count + 12 - 1:
                    print(f"FAIL: post-swap corpus size {size}, expected "
                          f"{args.count + 12 - 1}")
                    return 1
                for index, query in enumerate(queries):
                    got = client.knn(query, k=K)["neighbors"]
                    if got != expected[index]:
                        print(
                            f"FAIL: post-swap /knn diverged at query "
                            f"{index}: {got} != {expected[index]}"
                        )
                        return 1
                if client.healthz()["ingest"]["swaps"] != 1:
                    print("FAIL: /healthz did not record the swap")
                    return 1

    print(
        f"ingest smoke ok: init → insert → compact → serve → hot swap, "
        f"{len(queries)} served answers identical to the serial engine "
        f"before and after the swap"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
