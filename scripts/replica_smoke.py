"""Replica smoke test: a 4-replica fleet must answer like one engine.

Starts the query service twice over the same synthetic database — once
single-process, once with ``replicas=4`` (the consistent-hash routed
fleet) — and asserts over real HTTP that every ``/knn`` answer is
byte-for-byte identical.  Then the chaos leg: SIGKILL one replica (the
pid comes from ``/stats``'s ``per_replica`` section, like an operator
would) and assert the fleet keeps returning exact answers while the
slot respawns and the resilience counters account for the recovery.
Exits non-zero on any divergence, so CI and ``scripts/run_all.sh`` can
gate on it.

    PYTHONPATH=src python scripts/replica_smoke.py
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import time

import numpy as np

from smoke_utils import preflight_or_exit

from repro import Trajectory, TrajectoryDatabase
from repro.service import (
    PortInUseError,
    ServerHandle,
    ServiceClient,
    ServiceConfig,
)


def _database(count: int = 160, seed: int = 5) -> TrajectoryDatabase:
    rng = np.random.default_rng(seed)
    trajectories = [
        Trajectory(
            np.cumsum(rng.normal(size=(int(rng.integers(15, 50)), 2)), axis=0)
        )
        for _ in range(count)
    ]
    return TrajectoryDatabase(trajectories, epsilon=0.5)


def _serve_answers(database, replicas: int, query_indices, k: int, port=0):
    config = ServiceConfig(
        port=port, max_batch=1, cache_size=32, replicas=replicas,
        replica_retries=3,
    )
    with ServerHandle.start(database, config) as handle:
        with ServiceClient(handle.host, handle.port) as client:
            answers = {
                index: client.knn(database.trajectories[index], k=k)[
                    "neighbors"
                ]
                for index in query_indices
            }
    return answers


def smoke_equivalence(database, query_indices, port: int) -> int:
    single = _serve_answers(database, 1, query_indices, k=5, port=port)
    fleet = _serve_answers(database, 4, query_indices, k=5, port=port)
    for index in query_indices:
        if fleet[index] != single[index]:
            print(
                f"FAIL: /knn diverged on query {index}: "
                f"{fleet[index]} != {single[index]}"
            )
            return 1
    print(
        f"equivalence ok: {len(query_indices)} queries identical across "
        "1 engine and a 4-replica fleet"
    )
    return 0


def smoke_kill_recovery(database, query_indices, port: int) -> int:
    config = ServiceConfig(
        port=port, cache_size=32, replicas=4, replica_retries=3
    )
    with ServerHandle.start(database, config) as handle:
        with ServiceClient(handle.host, handle.port, retries=3) as client:
            expected = {
                index: client.knn(database.trajectories[index], k=5)[
                    "neighbors"
                ]
                for index in query_indices
            }
            stats = client.stats()["replicas"]
            victim = stats["per_replica"][0]["pid"]
            os.kill(victim, signal.SIGKILL)
            # Exactness through the outage: the victim's partition is
            # retried on siblings while the slot respawns behind us.
            for index in query_indices:
                served = client.knn(database.trajectories[index], k=5)[
                    "neighbors"
                ]
                if served != expected[index]:
                    print(
                        f"FAIL: post-kill /knn diverged on query {index}: "
                        f"{served} != {expected[index]}"
                    )
                    return 1
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                stats = client.stats()["replicas"]
                if (
                    stats["alive"] == stats["count"]
                    and stats["resilience"]["respawns"] >= 1
                ):
                    break
                time.sleep(0.1)
            else:
                print(f"FAIL: fleet never recovered: {stats}")
                return 1
            resilience = stats["resilience"]
            if resilience["replica_crashes"] < 1:
                print(f"FAIL: crash not counted: {resilience}")
                return 1
    print(
        f"kill-recovery ok: pid {victim} SIGKILLed, answers stayed exact, "
        f"resilience = {resilience}"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="fixed service port (default 0: ephemeral, never conflicts)",
    )
    args = parser.parse_args()
    preflight_or_exit("127.0.0.1", args.port)
    database = _database()
    query_indices = (0, 27, 88, 131)
    try:
        status = smoke_equivalence(database, query_indices, args.port)
        if status:
            return status
        status = smoke_kill_recovery(database, query_indices, args.port)
        if status:
            return status
    except PortInUseError as error:
        print(f"FAIL: {error}", file=sys.stderr)
        return 2
    print("replica smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
