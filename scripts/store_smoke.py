"""Tiered store smoke test: build-store → serve --store → query.

Builds a tiered store directory out of core from a synthetic corpus,
starts the query service *from the store* (no in-memory database), and
asserts over real HTTP that every ``/knn`` answer is byte-for-byte what
the serial in-memory engine computes, and that ``/stats`` reports the
storage section.  Repeats the check with 2-shard mmap-attach serving.
Exits non-zero on any divergence, so CI and ``scripts/run_all.sh`` can
gate on it.

    PYTHONPATH=src python scripts/store_smoke.py
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import Trajectory, TrajectoryDatabase, knn_search
from repro.service import ServerHandle, ServiceClient, ServiceConfig
from repro.service.pruning import build_pruners
from repro.storage import build_store

EPSILON = 0.5
K = 5
SPEC = "histogram,qgram"


def _trajectories(count: int = 160, seed: int = 4) -> list:
    rng = np.random.default_rng(seed)
    return [
        Trajectory(
            np.cumsum(rng.normal(size=(int(rng.integers(15, 50)), 2)), axis=0)
        )
        for _ in range(count)
    ]


def _serve_answers(store: Path, shards: int, queries, port: int = 0):
    config = ServiceConfig(
        port=port,
        max_batch=1,
        cache_size=0,
        shards=shards,
        store=str(store),
        pruners=SPEC,
    )
    with ServerHandle.start(None, config) as handle:
        with ServiceClient(handle.host, handle.port) as client:
            answers = [
                client.knn(query, k=K)["neighbors"] for query in queries
            ]
            stats = client.stats()
    return answers, stats


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=160)
    parser.add_argument("--chunk-size", type=int, default=32)
    args = parser.parse_args()

    trajectories = _trajectories(args.count)
    database = TrajectoryDatabase(trajectories, epsilon=EPSILON)
    queries = [trajectories[index] for index in (0, 33, 92, 141)]
    expected = []
    for query in queries:
        neighbors, _ = knn_search(
            database, query, K, build_pruners(database, SPEC)
        )
        expected.append(
            [
                {"index": int(n.index), "distance": float(n.distance)}
                for n in neighbors
            ]
        )

    with tempfile.TemporaryDirectory(prefix="store_smoke_") as tmp:
        store = Path(tmp) / "store"
        stats = build_store(
            iter(trajectories),
            store,
            EPSILON,
            parts=("histogram", "qgram"),
            chunk_size=args.chunk_size,
        )
        print(
            f"built store: {stats['count']} trajectories, "
            f"{stats['bytes'] / 1e6:.1f} MB"
        )

        for shards in (1, 2):
            answers, served_stats = _serve_answers(store, shards, queries)
            for index, (got, want) in enumerate(zip(answers, expected)):
                if got != want:
                    print(
                        f"FAIL: /knn diverged from serial engine at "
                        f"{shards} shard(s), query {index}: {got} != {want}"
                    )
                    return 1
            storage = served_stats.get("storage", {})
            if not storage.get("enabled"):
                print(f"FAIL: /stats storage section missing: {storage}")
                return 1
            if storage.get("count") != args.count:
                print(f"FAIL: /stats storage count wrong: {storage}")
                return 1

    print(
        f"store smoke ok: {len(queries)} served answers identical to the "
        f"serial engine at 1 and 2 shards, /stats storage section present"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
