"""Benchmark regression guard: fresh BENCH_*.json versus baselines.

Compares every ``BENCH_*.json`` present in both a baseline directory
(typically the committed copies, saved aside before regenerating) and a
fresh directory (typically the repository root after a benchmark run).
Only *higher-is-better* metrics are compared — numeric leaves whose key
contains ``speedup``, ``throughput``, ``qps``, or ``rps`` — because
absolute latencies shift with dataset size and machine, while relative
gains are what the benchmarks exist to defend.

A fresh value more than ``--tolerance`` (default 30%) below its baseline
fails the run, which is how CI catches a change that quietly destroys a
documented win.  Metrics present on only one side are reported but never
fail: benchmark configurations evolve.  Files whose recorded dataset
size (``database_size`` / ``trajectories`` / ``count`` leaves) differs
between the two sides are skipped entirely — speedups measured on
different workloads are not comparable, and a guard that compares them
anyway only produces noise.

    python scripts/check_bench.py --baseline bench_baselines --fresh .
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterator, Tuple

HIGHER_BETTER = ("speedup", "throughput", "qps", "rps")
SIZE_KEYS = ("database_size", "trajectories", "count")


def _metric_leaves(node, path: str = "") -> Iterator[Tuple[str, float]]:
    if isinstance(node, dict):
        for key, value in node.items():
            child = f"{path}.{key}" if path else str(key)
            yield from _metric_leaves(value, child)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from _metric_leaves(value, f"{path}[{index}]")
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        leaf = path.rsplit(".", 1)[-1].lower()
        if any(marker in leaf for marker in HIGHER_BETTER):
            yield path, float(node)


def _size_leaves(node, path: str = "") -> Iterator[Tuple[str, float]]:
    if isinstance(node, dict):
        for key, value in node.items():
            child = f"{path}.{key}" if path else str(key)
            yield from _size_leaves(value, child)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        if path.rsplit(".", 1)[-1].lower() in SIZE_KEYS:
            yield path, float(node)


def _load_payload(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"cannot read {path}: {error}") from None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        required=True,
        help="directory holding the baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--fresh",
        default=".",
        help="directory holding the freshly generated BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional regression before failing (default 0.30)",
    )
    args = parser.parse_args()

    baseline_dir = Path(args.baseline)
    fresh_dir = Path(args.fresh)
    baseline_files = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baseline_files:
        print(f"no BENCH_*.json baselines under {baseline_dir}")
        return 1

    failures = []
    compared = 0
    missing_fresh = []
    for baseline_path in baseline_files:
        fresh_path = fresh_dir / baseline_path.name
        if not fresh_path.exists():
            missing_fresh.append(baseline_path.name)
            print(f"skip {baseline_path.name}: no fresh copy")
            continue
        baseline_payload = _load_payload(baseline_path)
        fresh_payload = _load_payload(fresh_path)
        baseline_sizes = dict(_size_leaves(baseline_payload))
        fresh_sizes = dict(_size_leaves(fresh_payload))
        drifted = {
            key
            for key in set(baseline_sizes) & set(fresh_sizes)
            if baseline_sizes[key] != fresh_sizes[key]
        }
        if drifted:
            print(
                f"skip {baseline_path.name}: dataset size differs "
                f"({', '.join(sorted(drifted))})"
            )
            continue
        baseline = dict(_metric_leaves(baseline_payload))
        fresh = dict(_metric_leaves(fresh_payload))
        common = sorted(set(baseline) & set(fresh))
        uncommon = len(set(baseline) ^ set(fresh))
        if uncommon:
            print(
                f"{baseline_path.name}: {uncommon} metric(s) on one side "
                "only (configuration drift, not compared)"
            )
        for metric in common:
            compared += 1
            floor = baseline[metric] * (1.0 - args.tolerance)
            status = "ok" if fresh[metric] >= floor else "REGRESSION"
            print(
                f"{status:>10}  {baseline_path.name}:{metric}  "
                f"baseline {baseline[metric]:.3f}  fresh {fresh[metric]:.3f}"
            )
            if fresh[metric] < floor:
                failures.append((baseline_path.name, metric))

    if not compared:
        print("no comparable metrics found", end="")
        if missing_fresh:
            print(
                f": {len(missing_fresh)} baseline file(s) have no fresh "
                f"copy under {fresh_dir} ({', '.join(missing_fresh)}) — "
                "did the benchmark step fail or write elsewhere?"
            )
        else:
            print(
                " (every common file was size-skipped or had no "
                "higher-is-better metrics)"
            )
        return 1
    if failures:
        print(
            f"\n{len(failures)} metric(s) regressed by more than "
            f"{args.tolerance:.0%}:"
        )
        for name, metric in failures:
            print(f"  {name}:{metric}")
        return 1
    print(f"\nall {compared} compared metric(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
