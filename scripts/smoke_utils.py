"""Shared helpers for the smoke scripts in this directory.

The smoke scripts each start real servers on a configurable port; the
port preflight lived copy-pasted in every one of them until the replica
smoke made it three copies.  It lives here now.
"""

from __future__ import annotations

import socket
import sys


def preflight_port(host: str, port: int) -> bool:
    """True when ``port`` is bindable (always true for ephemeral 0)."""
    if port == 0:
        return True
    try:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            probe.bind((host, port))
    except OSError:
        return False
    return True


def preflight_or_exit(host: str, port: int) -> None:
    """Exit with status 2 and the standard message when the port is taken."""
    if not preflight_port(host, port):
        print(
            f"FAIL: port {port} is already bound by another process; "
            "free it or rerun with --port 0",
            file=sys.stderr,
        )
        raise SystemExit(2)
