"""Shard smoke test: a 2-shard server must answer like a 1-shard one.

Starts the query service twice over the same synthetic database — once
unsharded, once with ``shards=2`` (the shared-memory intra-query
engine) — and asserts over real HTTP that every ``/knn`` answer is
byte-for-byte identical, and that the sharded server's ``/stats``
reports the shard topology.  Exits non-zero on any divergence, so CI
and ``scripts/run_all.sh`` can gate on it.

    PYTHONPATH=src python scripts/shard_smoke.py
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from smoke_utils import preflight_or_exit

from repro import Trajectory, TrajectoryDatabase
from repro.service import (
    PortInUseError,
    ServerHandle,
    ServiceClient,
    ServiceConfig,
)


def _database(count: int = 160, seed: int = 4) -> TrajectoryDatabase:
    rng = np.random.default_rng(seed)
    trajectories = [
        Trajectory(
            np.cumsum(rng.normal(size=(int(rng.integers(15, 50)), 2)), axis=0)
        )
        for _ in range(count)
    ]
    return TrajectoryDatabase(trajectories, epsilon=0.5)


def _serve_answers(database, shards: int, query_indices, k: int, port: int = 0):
    config = ServiceConfig(
        port=port, max_batch=1, cache_size=0, shards=shards
    )
    with ServerHandle.start(database, config) as handle:
        with ServiceClient(handle.host, handle.port) as client:
            answers = {
                index: client.knn(database.trajectories[index], k=k)[
                    "neighbors"
                ]
                for index in query_indices
            }
            stats = client.stats()
    return answers, stats


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="fixed service port (default 0: ephemeral, never conflicts)",
    )
    args = parser.parse_args()
    preflight_or_exit("127.0.0.1", args.port)
    database = _database()
    query_indices = (0, 33, 92, 141)
    try:
        unsharded, _ = _serve_answers(
            database, 1, query_indices, k=5, port=args.port
        )
        sharded, stats = _serve_answers(
            database, 2, query_indices, k=5, port=args.port
        )
    except PortInUseError as error:
        print(f"FAIL: {error}", file=sys.stderr)
        return 2

    for index in query_indices:
        if sharded[index] != unsharded[index]:
            print(
                f"FAIL: /knn diverged on query {index}: "
                f"{sharded[index]} != {unsharded[index]}"
            )
            return 1

    sharding = stats.get("sharding", {})
    if not sharding.get("enabled"):
        print(f"FAIL: sharded server /stats reports sharding {sharding}")
        return 1
    if sharding.get("shards") != 2 or sharding.get("queries") != len(
        query_indices
    ):
        print(f"FAIL: unexpected shard topology in /stats: {sharding}")
        return 1

    print(
        f"shard smoke ok: {len(query_indices)} queries identical across "
        f"1 and 2 shards (start method "
        f"{sharding.get('start_method')!r}, per-shard stats for "
        f"{len(sharding.get('per_shard', []))} shard(s))"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
