"""End-to-end smoke test of the trajectory query service.

Starts an in-process server on a small synthetic database and exercises
the full request surface over real HTTP: ``/healthz``, ``/knn`` (with a
served-vs-direct exactness check), ``/range``, ``/distance``, ``/stats``,
and the 503 + ``Retry-After`` overload path.  Exits non-zero on any
divergence, so CI and ``scripts/run_all.sh`` can gate on it.

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import argparse
import sys
import threading

import numpy as np

from smoke_utils import preflight_or_exit

from repro import Trajectory, TrajectoryDatabase, knn_search, range_search
from repro.core.batch import warm_pruners
from repro.service import (
    PortInUseError,
    ServerHandle,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.service.pruning import build_pruners


def _database(count: int = 120, seed: int = 2) -> TrajectoryDatabase:
    rng = np.random.default_rng(seed)
    trajectories = [
        Trajectory(
            np.cumsum(rng.normal(size=(int(rng.integers(12, 40)), 2)), axis=0)
        )
        for _ in range(count)
    ]
    return TrajectoryDatabase(trajectories, epsilon=1.0)


def _payload(neighbors) -> list:
    return [
        {"index": int(n.index), "distance": float(n.distance)}
        for n in neighbors
    ]


def smoke_round_trip(database: TrajectoryDatabase, port: int = 0) -> None:
    pruners = build_pruners(database, "histogram,qgram")
    warm_pruners(pruners, database.trajectories[0])
    config = ServiceConfig(port=port, max_batch=4, max_delay_ms=2.0)
    with ServerHandle.start(database, config) as handle:
        with ServiceClient(handle.host, handle.port) as client:
            health = client.healthz()
            assert health["status"] == "ok", health

            for index in (0, 17, 63):
                query = database.trajectories[index]
                served = client.knn(query, k=5)["neighbors"]
                expected, _ = knn_search(database, query, 5, pruners)
                assert served == _payload(expected), (
                    f"/knn diverged from knn_search on query {index}"
                )

            query = database.trajectories[9]
            served = client.range_query(query, 10.0)["results"]
            expected, _ = range_search(database, query, 10.0, pruners)
            assert served == _payload(expected), "/range diverged"

            distance = client.distance(3, 41)
            assert distance["function"] == "edr", distance
            assert distance["distance"] >= 0.0, distance

            stats = client.stats()
            assert stats["requests"]["/knn"] >= 3, stats["requests"]
            assert stats["search"]["queries"] >= 4, stats["search"]
            print(
                "round-trip ok: "
                f"{stats['requests']} requests, pruning power "
                f"{stats['search']['pruning_power']:.3f}"
            )


def smoke_overload(database: TrajectoryDatabase) -> None:
    config = ServiceConfig(
        port=0, queue_limit=1, max_batch=1, cache_size=0, retry_after_s=1.0
    )
    with ServerHandle.start(database, config) as handle:
        rejections: list = []
        successes: list = []

        def fire(index: int) -> None:
            try:
                with ServiceClient(handle.host, handle.port) as client:
                    client.knn(index, k=3)
                    successes.append(index)
            except ServiceError as error:
                rejections.append(error)

        threads = [
            threading.Thread(target=fire, args=(index,)) for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert successes, "no request survived the overload flood"
        assert rejections, "queue_limit=1 flood produced no 503"
        for error in rejections:
            assert error.status == 503, error
            assert error.retry_after is not None, "503 without Retry-After"
        print(
            f"overload ok: {len(successes)} admitted, "
            f"{len(rejections)} rejected with 503 + Retry-After"
        )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="fixed service port (default 0: ephemeral, never conflicts)",
    )
    args = parser.parse_args()
    preflight_or_exit("127.0.0.1", args.port)
    database = _database()
    try:
        smoke_round_trip(database, port=args.port)
        smoke_overload(database)
    except PortInUseError as error:
        print(f"FAIL: {error}", file=sys.stderr)
        return 2
    print("service smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
