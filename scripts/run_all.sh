#!/usr/bin/env bash
# Full verification run: test suite, complete benchmark suite, and the
# assembled EXPERIMENTS.md.  Writes test_output.txt / bench_output.txt
# at the repository root.
set -u
cd "$(dirname "$0")/.."

python -m pytest tests/ 2>&1 | tee test_output.txt
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
python benchmarks/make_experiments_md.py
echo "run_all: done" >> bench_output.txt
