#!/usr/bin/env bash
# Full verification run: test suite, complete benchmark suite, the query
# service smoke test + load benchmark, and the assembled EXPERIMENTS.md.
# Writes test_output.txt / bench_output.txt at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest tests/ -x -q 2>&1 | tee test_output.txt
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
python scripts/service_smoke.py
python scripts/shard_smoke.py
python scripts/replica_smoke.py
python scripts/store_smoke.py
python scripts/ingest_smoke.py
python benchmarks/bench_service.py --count 400 --clients 8 --requests 4 \
    --pool 16 --max-batch 8 --epsilon 1.0
python benchmarks/bench_replicas.py --require-speedup 2.5
python benchmarks/bench_shards.py --count 2000 --require-speedup 1.5
python benchmarks/bench_subknn.py --require-speedup 3
python benchmarks/bench_tiered.py --sizes 10000,100000 --require-sublinear
python benchmarks/bench_ingest.py --require-speedup 3
python benchmarks/make_experiments_md.py
echo "run_all: done" >> bench_output.txt
